// Unit tests for the crash-fault layer: CrashPlan determinism and
// validation, clean fail-stop exits, structured failure detection
// (PeerFailedError naming the dead rank instead of a deadlock), the
// logical-clock receive timeout, heartbeat accounting (detection adds
// messages but zero words to algorithm phases), and the debris-vs-leak
// distinction in Machine::run's post-run check.
#include "machine/faults.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <vector>

#include "machine/machine.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace camb {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// ---------------------------------------------------------------------------
// CrashPlan: determinism and validation.
// ---------------------------------------------------------------------------

TEST(CrashPlan, DerivedPositionsAreAPureFunctionOfSeedAndRank) {
  const std::vector<int> ranks = {0, 2, 5};
  const CrashPlan a = CrashPlan::derived(ranks, 0xC0FFEE, 8, 64);
  const CrashPlan b = CrashPlan::derived(ranks, 0xC0FFEE, 8, 64);
  for (int r : ranks) {
    EXPECT_EQ(a.planned_position(r), b.planned_position(r));
    EXPECT_GE(a.planned_position(r), 0);
    EXPECT_LE(a.planned_position(r), 64);
  }
  EXPECT_EQ(a.planned_position(1), -1);  // unlisted ranks never die
  // A different seed domain moves at least one position (vanishingly
  // unlikely to collide on all three).
  const CrashPlan c = CrashPlan::derived(ranks, 0xDEAD, 8, 64);
  bool any_differs = false;
  for (int r : ranks) any_differs |= a.planned_position(r) != c.planned_position(r);
  EXPECT_TRUE(any_differs);
}

TEST(CrashPlan, MasterSeedDerivationSeparatesDomains) {
  // The crash domain must not alias the fault or rank-RNG domains.
  const std::uint64_t master = 42;
  EXPECT_NE(derive_seed(master, kSeedDomainCrashes),
            derive_seed(master, kSeedDomainFaults));
  EXPECT_NE(derive_seed(master, kSeedDomainCrashes),
            derive_seed(master, kSeedDomainRankRng));
}

TEST(CrashPlan, RejectsInvalidEvents) {
  EXPECT_THROW(CrashPlan({{8, 0}}, 8), Error);        // rank out of range
  EXPECT_THROW(CrashPlan({{-1, 0}}, 8), Error);       // negative rank
  EXPECT_THROW(CrashPlan({{1, -3}}, 8), Error);       // negative position
  EXPECT_THROW(CrashPlan({{1, 0}, {1, 2}}, 8), Error);  // duplicate rank
}

TEST(CrashPlan, ShouldCrashFiresExactlyAtThePlannedSend) {
  CrashPlan plan({{1, 2}}, 4);
  EXPECT_FALSE(plan.should_crash(1));  // send 0
  EXPECT_FALSE(plan.should_crash(1));  // send 1
  EXPECT_TRUE(plan.should_crash(1));   // send 2: dies here
  for (int k = 0; k < 10; ++k) EXPECT_FALSE(plan.should_crash(0));
  EXPECT_EQ(plan.triggered(), std::vector<int>{1});
}

// ---------------------------------------------------------------------------
// Fail-stop execution: clean exits, detection, no deadlock.
// ---------------------------------------------------------------------------

TEST(MachineCrash, CrashedRankExitsCleanlyAndIsRecorded) {
  Machine machine(3);
  machine.enable_crashes({{1, 0}});  // rank 1 dies at its first send
  std::atomic<int> survivors{0};
  machine.run([&](RankCtx& ctx) {
    if (ctx.rank() == 1) {
      ctx.send(0, 7, {1.0});  // never completes: the crash fires instead
      ADD_FAILURE() << "rank 1 should have crashed before sending";
    }
    ++survivors;
  });
  EXPECT_EQ(survivors.load(), 2);
  const CrashOutcome& outcome = machine.crash_outcome();
  ASSERT_EQ(outcome.crashed, std::vector<int>{1});
  ASSERT_EQ(outcome.crash_clocks.size(), 1u);
  EXPECT_TRUE(outcome.errored.empty());
}

TEST(MachineCrash, BlockedReceiverGetsStructuredErrorNamingTheDeadRank) {
  Machine machine(2);
  machine.enable_crashes({{1, 0}});
  try {
    machine.run([](RankCtx& ctx) {
      if (ctx.rank() == 1) ctx.send(0, 7, {1.0});
      if (ctx.rank() == 0) ctx.recv(1, 7);  // peer is dead: must not hang
    });
    FAIL() << "expected PeerFailedError";
  } catch (const PeerFailedError& err) {
    EXPECT_EQ(err.failed_rank(), 1);
    EXPECT_EQ(err.receiver(), 0);
    EXPECT_EQ(err.tag(), 7);
    EXPECT_TRUE(err.peer_crashed());
  }
  EXPECT_EQ(machine.crash_outcome().crashed, std::vector<int>{1});
}

TEST(MachineCrash, BufferedMailFromTheDeadRankIsDeliveredBeforeFailover) {
  // Fail-stop semantics: everything the rank sent before dying is good data.
  Machine machine(2);
  machine.enable_crashes({{1, 1}});  // dies at its *second* send
  machine.run([](RankCtx& ctx) {
    if (ctx.rank() == 1) {
      ctx.send(0, 7, {4.0, 2.0});
      ctx.send(0, 7, {9.0});  // crash fires here
    }
    if (ctx.rank() == 0) {
      const std::vector<double> first = ctx.recv(1, 7);
      ASSERT_EQ(first.size(), 2u);
      EXPECT_DOUBLE_EQ(first[0], 4.0);
      EXPECT_THROW(ctx.recv(1, 7), PeerFailedError);
    }
  });
  EXPECT_EQ(machine.crash_outcome().crashed, std::vector<int>{1});
}

TEST(MachineCrash, DetectionEventsAreRecordedWithClocks) {
  Machine machine(2);
  machine.enable_crashes({{1, 0}});
  machine.run([](RankCtx& ctx) {
    if (ctx.rank() == 1) ctx.send(0, 7, {1.0});
    if (ctx.rank() == 0) {
      try {
        ctx.recv(1, 7);
      } catch (const PeerFailedError&) {
      }
    }
  });
  const CrashOutcome& outcome = machine.crash_outcome();
  ASSERT_GE(outcome.detections.size(), 1u);
  EXPECT_EQ(outcome.detections[0].detector, 0);
  EXPECT_EQ(outcome.detections[0].failed, 1);
  EXPECT_TRUE(outcome.detections[0].peer_crashed);
}

// ---------------------------------------------------------------------------
// recv_timed: logical-clock deadlines.
// ---------------------------------------------------------------------------

TEST(MachineCrash, RecvTimedTimesOutOnLateStampAndDeliversLater) {
  Machine machine(2);
  machine.run([](RankCtx& ctx) {
    if (ctx.rank() == 1) ctx.send(0, 7, {1.0, 2.0});  // stamp alpha+2*beta = 3
    ctx.barrier();
    if (ctx.rank() == 0) {
      RecvStatus status = RecvStatus::kDelivered;
      const auto early = ctx.recv_timed(1, 7, /*deadline=*/0.5, &status);
      EXPECT_FALSE(early.has_value());
      EXPECT_EQ(status, RecvStatus::kTimedOut);
      // The message stays queued: an infinite deadline drains it.
      const auto late = ctx.recv_timed(1, 7, kInf, &status);
      ASSERT_TRUE(late.has_value());
      EXPECT_EQ(status, RecvStatus::kDelivered);
      ASSERT_EQ(late->size(), 2u);
      EXPECT_DOUBLE_EQ((*late)[1], 2.0);
    }
  });
}

TEST(MachineCrash, RecvTimedReportsDeadSourceInsteadOfHanging) {
  Machine machine(2);
  machine.enable_crashes({{1, 0}});
  machine.run([](RankCtx& ctx) {
    if (ctx.rank() == 1) ctx.send(0, 7, {1.0});
    if (ctx.rank() == 0) {
      RecvStatus status = RecvStatus::kDelivered;
      const auto result = ctx.recv_timed(1, 7, kInf, &status);
      EXPECT_FALSE(result.has_value());
      EXPECT_EQ(status, RecvStatus::kSrcDead);
    }
  });
}

// ---------------------------------------------------------------------------
// Heartbeat accounting: detection never pollutes algorithm word counts.
// ---------------------------------------------------------------------------

TEST(MachineCrash, DetectionChargesHeartbeatPhaseAndZeroWords) {
  Machine machine(2);
  machine.enable_crashes({{1, 0}});
  machine.run([](RankCtx& ctx) {
    ctx.set_phase("algorithm");
    if (ctx.rank() == 1) ctx.send(0, 7, {1.0});
    if (ctx.rank() == 0) {
      try {
        ctx.recv(1, 7);
      } catch (const PeerFailedError&) {
      }
    }
  });
  const auto heartbeat = machine.stats().rank_phase(0, "heartbeat");
  EXPECT_GE(heartbeat.messages_sent, 1);  // the suspicion probe
  EXPECT_EQ(heartbeat.words_sent(), 0);     // ...carries zero words
  const auto algorithm = machine.stats().rank_phase(0, "algorithm");
  EXPECT_EQ(algorithm.words_received(), 0);  // detection added nothing here
  EXPECT_EQ(algorithm.words_sent(), 0);
}

// ---------------------------------------------------------------------------
// Debris vs leak: the post-run undelivered-mail check.
// ---------------------------------------------------------------------------

TEST(MachineCrash, UndeliveredMailAfterACrashIsDebrisNotALeak) {
  Machine machine(2);
  machine.enable_crashes({{1, 1}});
  machine.run([](RankCtx& ctx) {
    // Rank 1's first send is never received before rank 1 dies; the run
    // must still finish cleanly, reporting the mail as crash debris.
    if (ctx.rank() == 1) {
      ctx.send(0, 7, {1.0, 2.0, 3.0});
      ctx.send(0, 8, {4.0});  // crash fires here
    }
  });
  const CrashOutcome& outcome = machine.crash_outcome();
  ASSERT_EQ(outcome.debris.size(), 1u);
  EXPECT_EQ(outcome.debris[0].src, 1);
  EXPECT_EQ(outcome.debris[0].dst, 0);
  EXPECT_EQ(outcome.debris[0].tag, 7);
  EXPECT_EQ(outcome.debris[0].words(), 3);
}

TEST(MachineCrash, CleanRunLeakFailureListsTheEnvelopes) {
  Machine machine(2);
  try {
    machine.run([](RankCtx& ctx) {
      ctx.set_phase("stage0");
      if (ctx.rank() == 1) ctx.send(0, 42, {1.0, 2.0});
    });
    FAIL() << "expected the leak check to fire";
  } catch (const Error& err) {
    const std::string what = err.what();
    EXPECT_NE(what.find("undelivered message"), std::string::npos) << what;
    EXPECT_NE(what.find("src 1"), std::string::npos) << what;
    EXPECT_NE(what.find("dst 0"), std::string::npos) << what;
    EXPECT_NE(what.find("tag 42"), std::string::npos) << what;
    EXPECT_NE(what.find("bytes 16"), std::string::npos) << what;
    EXPECT_NE(what.find("stage0"), std::string::npos) << what;
  }
}

// ---------------------------------------------------------------------------
// abandon(): deviation is scoped to algorithm tags.
// ---------------------------------------------------------------------------

TEST(MachineCrash, AbandonFailsAlgorithmTagsButKeepsRecoveryTagsFlowing) {
  Machine machine(2);
  machine.run([](RankCtx& ctx) {
    if (ctx.rank() == 1) {
      ctx.abandon();
      ctx.send(0, kRecoveryTagBase + 3, {5.0});
    }
    if (ctx.rank() == 0) {
      RecvStatus status = RecvStatus::kDelivered;
      const auto algorithm_msg = ctx.recv_timed(1, /*tag=*/3, kInf, &status);
      EXPECT_FALSE(algorithm_msg.has_value());
      EXPECT_EQ(status, RecvStatus::kSrcDeviated);
      const std::vector<double> recovery_msg =
          ctx.recv(1, kRecoveryTagBase + 3);
      ASSERT_EQ(recovery_msg.size(), 1u);
      EXPECT_DOUBLE_EQ(recovery_msg[0], 5.0);
    }
  });
  EXPECT_EQ(machine.crash_outcome().abandoned, std::vector<int>{1});
}

// ---------------------------------------------------------------------------
// fault_profile_from_spec: CLI-facing range validation.
// ---------------------------------------------------------------------------

TEST(FaultProfileSpec, AcceptsNamedProfilesAndKeyValueSpecs) {
  EXPECT_NO_THROW(fault_profile_from_spec("heavy"));
  const FaultProfile p =
      fault_profile_from_spec("fail_prob=0.25,max_retries=3,max_delay=2.5");
  EXPECT_DOUBLE_EQ(p.fail_prob, 0.25);
  EXPECT_EQ(p.max_retries, 3);
  EXPECT_DOUBLE_EQ(p.max_delay, 2.5);
}

TEST(FaultProfileSpec, RejectsOutOfRangeAndMalformedKnobs) {
  EXPECT_THROW(fault_profile_from_spec("fail_prob=1.5"), Error);
  EXPECT_THROW(fault_profile_from_spec("delay_prob=-0.1"), Error);
  EXPECT_THROW(fault_profile_from_spec("straggler_prob=2"), Error);
  EXPECT_THROW(fault_profile_from_spec("max_delay=-1"), Error);
  EXPECT_THROW(fault_profile_from_spec("no_such_knob=1"), Error);
  EXPECT_THROW(fault_profile_from_spec("fail_prob="), Error);
  EXPECT_THROW(fault_profile_from_spec("not_a_profile_name"), Error);
}

}  // namespace
}  // namespace camb
