// Elastic shrink-and-regrid acceptance battery: the three elastic twins
// (summa / grid3d / alg25d) must degrade onto the optimal grid for the
// surviving P′ without ever hanging, answering wrong, or silently
// over-communicating.  The invariants are exact, not statistical:
//
//   * a clean elastic run is word-identical to the base algorithm, rank by
//     rank, and bit-identical in C;
//   * an enlistment-crash run (the rank dies among its zero-word probe
//     sends, before any attempt-0 data moved) finishes bit-identical to the
//     fault-free elastic twin, and every machine rank's received words equal
//     the closed-form prediction — shrink control + migration tax + exec at
//     P′ — with zero tolerance, across 8 crash seeds and both schedulers;
//   * the accounting holds in every dtype (the data legs scale by the
//     element width, the shrink flood stays fixed 8-byte control words);
//   * under message SDC with the reliable transport the tax replay stays
//     word-exact on clean elastic runs and crashed runs still heal with
//     zero escapes;
//   * rival recovery disciplines (rollback, memory SDC) are rejected up
//     front rather than composed wrongly.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <string>
#include <tuple>
#include <vector>

#include "collectives/coll_cost.hpp"
#include "machine/faults.hpp"
#include "matmul/elastic.hpp"
#include "matmul/runner.hpp"

namespace camb::mm {
namespace {

// One case per elastic twin.  integer_inputs is forced on so the base runs
// produce the same bits the elastic twins do (the twins force it for
// rounded scalars to keep C grid-independent).
const SummaConfig kSumma = [] {
  SummaConfig cfg{{18, 15, 12}, 3};
  cfg.integer_inputs = true;
  return cfg;
}();
const Grid3dConfig kGrid3d = [] {
  Grid3dConfig cfg{{12, 10, 8}, core::Grid3{2, 2, 2}};
  cfg.integer_inputs = true;
  return cfg;
}();
const Alg25dConfig kAlg25d = [] {
  Alg25dConfig cfg;
  cfg.shape = {12, 12, 12};
  cfg.g = 2;
  cfg.c = 2;
  cfg.integer_inputs = true;
  return cfg;
}();

constexpr i64 kSummaP = 9;
constexpr i64 kGridP = 8;
constexpr i64 kAlgP = 8;

RunOptions elastic_opts(std::uint64_t master_seed) {
  RunOptions opts = RunOptions::verified(VerifyMode::kReference);
  opts.perturb.master_seed = master_seed;
  opts.elastic.enabled = true;
  return opts;
}

/// Arm an enlistment-window crash: positions in [0, P-2] all land inside
/// the first zero-word probe round, so the dying rank never acknowledges
/// round B and recovery starts with zero data words moved — the scenario
/// the closed-form predictor covers.
RunOptions enlistment_crash_opts(std::uint64_t master_seed,
                                 std::vector<int> ranks, i64 nprocs,
                                 int max_failures = 1) {
  RunOptions opts = elastic_opts(master_seed);
  opts.crash.ranks = std::move(ranks);
  opts.crash.max_send_position = nprocs - 2;
  opts.elastic.max_failures = max_failures;
  return opts;
}

/// Fault-free elastic baselines (threads scheduler; the sweep separately
/// pins fibers word-exact, and output bits are scheduler-independent).
const RunReport& clean_summa_elastic() {
  static const RunReport r = run_summa_elastic(kSumma, elastic_opts(1));
  return r;
}
const RunReport& clean_grid3d_elastic() {
  static const RunReport r = run_grid3d_elastic(kGrid3d, elastic_opts(1));
  return r;
}
const RunReport& clean_alg25d_elastic() {
  static const RunReport r = run_alg25d_elastic(kAlg25d, elastic_opts(1));
  return r;
}

/// The zero-tolerance contract of one crashed elastic run: bit-identical C,
/// the agreed failed set covering every fired crash, and every machine
/// rank's received words equal to the closed-form prediction for that
/// failed set (shrink control + width-scaled migration + exec at P′).
void expect_pinned_to_prediction(const RunReport& report,
                                 const RunReport& clean,
                                 const ElasticPrediction& pred,
                                 const std::string& label) {
  ASSERT_TRUE(report.verified) << label;
  ASSERT_FALSE(report.recovery.crashed.empty())
      << label << ": crash never fired — widen max_send_position";
  EXPECT_EQ(report.output_hash, clean.output_hash)
      << label << ": " << report.elastic.summary();
  EXPECT_EQ(report.max_abs_error, clean.max_abs_error) << label;
  EXPECT_TRUE(report.elastic.enabled) << label;
  EXPECT_GE(report.elastic.rounds, 1) << label;
  for (int dead : report.recovery.crashed) {
    EXPECT_TRUE(std::find(report.elastic.failed.begin(),
                          report.elastic.failed.end(),
                          dead) != report.elastic.failed.end())
        << label << ": crashed rank " << dead << " missing from agreed set; "
        << report.elastic.summary();
  }
  EXPECT_EQ(report.elastic.survivors, pred.survivors) << label;
  EXPECT_EQ(report.elastic.active_ranks, pred.active_ranks) << label;
  EXPECT_EQ(report.elastic.grid, pred.grid) << label;

  // The per-rank words, with zero tolerance: survivors pay exactly shrink +
  // migration + exec-at-P′; the failed received nothing but zero-word
  // probes.
  ASSERT_EQ(report.rank_recv_words.size(), pred.rank_recv_words.size())
      << label;
  for (std::size_t r = 0; r < pred.rank_recv_words.size(); ++r) {
    EXPECT_EQ(report.rank_recv_words[r], pred.rank_recv_words[r])
        << label << " rank " << r << ": " << report.elastic.summary();
  }
  EXPECT_EQ(report.measured_critical_recv, report.predicted_words()) << label;

  // The component ledger: the measured shrink flood and migration tax match
  // their closed forms, and the flood is fixed control words independent of
  // the data dtype.
  EXPECT_EQ(report.elastic.shrink_recv_words, pred.shrink_words) << label;
  double max_migration = 0;
  for (double w : pred.rank_migration_words) {
    max_migration = std::max(max_migration, w);
  }
  EXPECT_EQ(report.elastic.migration_recv_words, max_migration) << label;
}

// ---------------------------------------------------------------------------
// Clean elastic runs: word-identical to the base algorithm, rank by rank.
// ---------------------------------------------------------------------------

void expect_clean_matches_base(const RunReport& base, const RunReport& elastic,
                               const ElasticPrediction& pred,
                               const char* what) {
  ASSERT_TRUE(elastic.verified) << what;
  EXPECT_TRUE(elastic.elastic.enabled) << what;
  EXPECT_EQ(elastic.elastic.rounds, 0) << what;
  EXPECT_TRUE(elastic.elastic.failed.empty()) << what;
  // Word-identical: the enlistment and confirm rounds are zero-word probes,
  // so every rank's word counters equal the base run's exactly (messages
  // differ — the probes are messages).
  EXPECT_EQ(elastic.rank_recv_words, base.rank_recv_words) << what;
  EXPECT_EQ(elastic.rank_sent_words, base.rank_sent_words) << what;
  EXPECT_EQ(elastic.output_hash, base.output_hash) << what;
  EXPECT_EQ(elastic.max_abs_error, base.max_abs_error) << what;
  // The empty-failed prediction degenerates to the base closed form: no
  // shrink control words, no migration, base exec words per rank.
  EXPECT_EQ(elastic.predicted_control_words, 0) << what;
  EXPECT_EQ(elastic.measured_critical_recv, elastic.predicted_words()) << what;
  ASSERT_EQ(elastic.rank_recv_words.size(), pred.rank_recv_words.size())
      << what;
  for (std::size_t r = 0; r < pred.rank_recv_words.size(); ++r) {
    EXPECT_EQ(elastic.rank_recv_words[r], pred.rank_recv_words[r])
        << what << " rank " << r;
  }
  EXPECT_EQ(elastic.elastic.migration_recv_words, 0) << what;
  EXPECT_EQ(elastic.elastic.shrink_recv_words, 0) << what;
}

TEST(ElasticClean, SummaIsWordIdenticalToBase) {
  const RunReport base = run_summa(kSumma, elastic_opts(1));
  const ElasticConfig ecfg{true, 1};
  expect_clean_matches_base(
      base, clean_summa_elastic(),
      summa_elastic_prediction(kSumma, ecfg, {}, kSummaP, 1.0), "summa");
}

TEST(ElasticClean, Grid3dIsWordIdenticalToBase) {
  const RunReport base = run_grid3d(kGrid3d, elastic_opts(1));
  const ElasticConfig ecfg{true, 1};
  expect_clean_matches_base(
      base, clean_grid3d_elastic(),
      grid3d_elastic_prediction(kGrid3d, ecfg, {}, kGridP, 1.0), "grid3d");
}

TEST(ElasticClean, Alg25dIsWordIdenticalToBase) {
  const RunReport base = run_alg25d(kAlg25d, elastic_opts(1));
  const ElasticConfig ecfg{true, 1};
  expect_clean_matches_base(
      base, clean_alg25d_elastic(),
      alg25d_elastic_prediction(kAlg25d, ecfg, {}, kAlgP, 1.0), "alg25d");
}

// ---------------------------------------------------------------------------
// The 16-run acceptance sweep: 8 crash seeds x both schedulers, each run
// pinned per-rank to the closed-form prediction and bit-identical in C.
// ---------------------------------------------------------------------------

class ElasticCrashSweep
    : public ::testing::TestWithParam<std::tuple<int, SchedulerKind>> {};

TEST_P(ElasticCrashSweep, ShrinksWordExactlyAndBitIdentically) {
  const auto [seed_idx, kind] = GetParam();
  const std::uint64_t master_seed =
      0xE1A5 + static_cast<std::uint64_t>(seed_idx);
  const ElasticConfig ecfg{true, 1};

  {
    const int dead = seed_idx % static_cast<int>(kSummaP);
    RunOptions opts = enlistment_crash_opts(master_seed, {dead}, kSummaP);
    opts.scheduler.kind = kind;
    const RunReport report = run_summa_elastic(kSumma, opts);
    expect_pinned_to_prediction(
        report, clean_summa_elastic(),
        summa_elastic_prediction(kSumma, ecfg, report.elastic.failed,
                                 static_cast<int>(kSummaP), 1.0),
        "summa seed=" + std::to_string(seed_idx) + " dead=" +
            std::to_string(dead));
  }
  {
    const int dead = seed_idx % static_cast<int>(kGridP);
    RunOptions opts = enlistment_crash_opts(master_seed, {dead}, kGridP);
    opts.scheduler.kind = kind;
    const RunReport report = run_grid3d_elastic(kGrid3d, opts);
    expect_pinned_to_prediction(
        report, clean_grid3d_elastic(),
        grid3d_elastic_prediction(kGrid3d, ecfg, report.elastic.failed,
                                  static_cast<int>(kGridP), 1.0),
        "grid3d seed=" + std::to_string(seed_idx) + " dead=" +
            std::to_string(dead));
  }
  {
    const int dead = seed_idx % static_cast<int>(kAlgP);
    RunOptions opts = enlistment_crash_opts(master_seed, {dead}, kAlgP);
    opts.scheduler.kind = kind;
    const RunReport report = run_alg25d_elastic(kAlg25d, opts);
    expect_pinned_to_prediction(
        report, clean_alg25d_elastic(),
        alg25d_elastic_prediction(kAlg25d, ecfg, report.elastic.failed,
                                  static_cast<int>(kAlgP), 1.0),
        "alg25d seed=" + std::to_string(seed_idx) + " dead=" +
            std::to_string(dead));
  }
}

INSTANTIATE_TEST_SUITE_P(
    CrashSeeds, ElasticCrashSweep,
    ::testing::Combine(::testing::Range(0, 8),
                       ::testing::Values(SchedulerKind::kThreads,
                                         SchedulerKind::kFibers)));

// Two enlistment deaths under a max_failures = 2 budget: one shrink round
// agrees on both, and the prediction (flood provisioned for f = 2, P′ two
// smaller) still pins every rank exactly.
TEST(ElasticCrash, TwoFailuresAgreeInOneRound) {
  const ElasticConfig ecfg{true, 2};
  RunOptions opts =
      enlistment_crash_opts(0x2FA1, {2, 5}, kSummaP, /*max_failures=*/2);
  const RunReport report = run_summa_elastic(kSumma, opts);
  ASSERT_EQ(report.recovery.crashed.size(), 2u)
      << "both crashes must fire in the enlistment window";
  expect_pinned_to_prediction(
      report, clean_summa_elastic(),
      summa_elastic_prediction(kSumma, ecfg, report.elastic.failed,
                               static_cast<int>(kSummaP), 1.0),
      "summa two-failure");
  EXPECT_EQ(report.elastic.survivors, kSummaP - 2);
}

// The shrink flood is provisioned for the crash budget: a larger
// max_failures costs more control words even for the same single death.
TEST(ElasticCrash, ShrinkFloodScalesWithFailureBudget) {
  const i64 f1 = elastic_shrink_recv_words_exact(
      static_cast<int>(kSummaP), /*max_failures=*/1, /*pre_failures=*/1);
  const i64 f2 = elastic_shrink_recv_words_exact(
      static_cast<int>(kSummaP), /*max_failures=*/2, /*pre_failures=*/1);
  EXPECT_GT(f2, f1);

  RunOptions opts =
      enlistment_crash_opts(0x2FA2, {4}, kSummaP, /*max_failures=*/2);
  const RunReport report = run_summa_elastic(kSumma, opts);
  ASSERT_FALSE(report.recovery.crashed.empty());
  EXPECT_EQ(report.elastic.shrink_recv_words, static_cast<double>(f2));
}

// ---------------------------------------------------------------------------
// Dtype legs: the migration and exec words scale by the element width, the
// shrink flood stays fixed 8-byte control traffic, and C stays bit-exact.
// ---------------------------------------------------------------------------

TEST(ElasticDtype, CrashPinnedWordExactAcrossDtypes) {
  const ElasticConfig ecfg{true, 1};
  for (DType dt :
       {DType::kF64, DType::kF32, DType::kI64, DType::kKahan}) {
    const std::string label = std::string("summa elastic ") + dtype_name(dt);
    RunOptions clean_opts = elastic_opts(3);
    clean_opts.dtype = dt;
    const RunReport clean = run_summa_elastic(kSumma, clean_opts);
    ASSERT_TRUE(clean.verified) << label;

    RunOptions opts = enlistment_crash_opts(0xD7E + 0, {4}, kSummaP);
    opts.dtype = dt;
    const RunReport report = run_summa_elastic(kSumma, opts);
    expect_pinned_to_prediction(
        report, clean,
        summa_elastic_prediction(kSumma, ecfg, report.elastic.failed,
                                 static_cast<int>(kSummaP),
                                 dtype_width_words(dt)),
        label);
    // The flood never scales with the dtype.
    EXPECT_EQ(report.elastic.shrink_recv_words,
              static_cast<double>(elastic_shrink_recv_words_exact(
                  static_cast<int>(kSummaP), 1,
                  static_cast<int>(report.elastic.failed.size()))))
        << label;
  }
}

// ---------------------------------------------------------------------------
// Scheduler equivalence: the fiber twin of a crashed elastic run reproduces
// every counter and every output bit, not merely "also recovers".
// ---------------------------------------------------------------------------

TEST(ElasticSchedulerEquivalence, FiberTwinIsWordExactUnderCrash) {
  RunOptions opts = enlistment_crash_opts(0xF1B, {3}, kGridP);
  opts.scheduler.kind = SchedulerKind::kThreads;
  const RunReport threads = run_grid3d_elastic(kGrid3d, opts);
  opts.scheduler.kind = SchedulerKind::kFibers;
  const RunReport fibers = run_grid3d_elastic(kGrid3d, opts);
  ASSERT_FALSE(threads.recovery.crashed.empty());
  EXPECT_EQ(fibers.recovery.crashed, threads.recovery.crashed);
  EXPECT_EQ(fibers.elastic.failed, threads.elastic.failed);
  EXPECT_EQ(fibers.elastic.rounds, threads.elastic.rounds);
  EXPECT_EQ(fibers.elastic.grid, threads.elastic.grid);
  EXPECT_EQ(fibers.rank_recv_words, threads.rank_recv_words);
  EXPECT_EQ(fibers.rank_sent_words, threads.rank_sent_words);
  EXPECT_EQ(fibers.rank_messages, threads.rank_messages);
  EXPECT_EQ(fibers.output_hash, threads.output_hash);
  EXPECT_EQ(fibers.simulated_time, threads.simulated_time);
}

// ---------------------------------------------------------------------------
// Elastic x message SDC x reliable transport.
// ---------------------------------------------------------------------------

// On a clean elastic run the whole SDC bill lands in the transport phase
// and replays word-exactly from the counted-send log — per rank, on top of
// the unperturbed elastic totals.
TEST(ElasticSdc, CleanRunRepaysTransportTaxExactly) {
  constexpr double kRate = 0.08;
  RunOptions opts = elastic_opts(7);
  opts.sdc.message_rate = kRate;
  opts.sdc.reliable = true;
  opts.sdc.sdc_seed_override = 0x5E1A;
  opts.collect_trace = true;
  const RunReport faulted = run_summa_elastic(kSumma, opts);
  const RunReport clean = run_summa_elastic(kSumma, elastic_opts(7));
  const std::string label =
      "summa elastic sdc " + faulted.corruption.summary();

  EXPECT_EQ(faulted.output_hash, clean.output_hash) << label;
  EXPECT_EQ(faulted.elastic.rounds, 0) << label;
  EXPECT_EQ(faulted.corruption.escaped, 0) << label;
  EXPECT_GT(faulted.corruption.injected_drops +
                faulted.corruption.injected_flips +
                faulted.corruption.injected_dups,
            0)
      << label << ": no events injected — raise the rate";
  EXPECT_EQ(faulted.corruption.caught_at_transport,
            faulted.corruption.injected_flips)
      << label;

  FaultProfile profile;
  profile.drop_prob = kRate;
  profile.flip_prob = kRate;
  profile.dup_prob = kRate;
  ASSERT_FALSE(faulted.trace_events.empty()) << label;
  const std::vector<PhaseCounters> tax = coll::predicted_transport_phase(
      profile, opts.perturb.fault_seed(), opts.sdc.sdc_seed_override,
      static_cast<int>(kSummaP), faulted.trace_events);
  for (int r = 0; r < static_cast<int>(kSummaP); ++r) {
    const auto s = static_cast<std::size_t>(r);
    EXPECT_EQ(faulted.rank_recv_words[s],
              clean.rank_recv_words[s] + tax[s].words_received())
        << label << " rank " << r;
    EXPECT_EQ(faulted.rank_sent_words[s],
              clean.rank_sent_words[s] + tax[s].words_sent())
        << label << " rank " << r;
  }
}

// A crash inside the enlistment window while the transport is healing
// drops/flips/dups: the survivors still shrink, regrid, and deliver the
// bit-identical C with zero escapes, under both schedulers.
class ElasticSdcCrash : public ::testing::TestWithParam<SchedulerKind> {};

TEST_P(ElasticSdcCrash, ShrinksBitIdenticallyWhileHealingTransport) {
  RunOptions opts = enlistment_crash_opts(0xC4A5, {4}, kSummaP);
  opts.sdc.message_rate = 0.06;
  opts.sdc.reliable = true;
  opts.sdc.sdc_seed_override = 0x5E1B;
  opts.scheduler.kind = GetParam();
  const RunReport report = run_summa_elastic(kSumma, opts);
  const std::string label =
      "summa elastic crash+sdc " + report.corruption.summary();

  ASSERT_TRUE(report.verified) << label;
  ASSERT_FALSE(report.recovery.crashed.empty())
      << label << ": crash never fired — widen max_send_position";
  EXPECT_GE(report.elastic.rounds, 1) << label;
  EXPECT_EQ(report.output_hash, clean_summa_elastic().output_hash) << label;
  EXPECT_EQ(report.max_abs_error, clean_summa_elastic().max_abs_error)
      << label;
  EXPECT_EQ(report.corruption.escaped, 0) << label;
  EXPECT_GT(report.corruption.injected_drops +
                report.corruption.injected_flips +
                report.corruption.injected_dups,
            0)
      << label;
  // Copies addressed to the dead rank become crash debris, so in-flight
  // catches may undercount injections — never overcount.
  EXPECT_LE(report.corruption.caught_at_transport,
            report.corruption.injected_flips)
      << label;
}

INSTANTIATE_TEST_SUITE_P(Schedulers, ElasticSdcCrash,
                         ::testing::Values(SchedulerKind::kThreads,
                                           SchedulerKind::kFibers));

// ---------------------------------------------------------------------------
// Rival recovery disciplines are rejected up front.
// ---------------------------------------------------------------------------

TEST(ElasticRejections, RollbackAndMemorySdcDoNotCompose) {
  {
    RunOptions opts = elastic_opts(1);
    opts.checkpoint.interval = 2;
    opts.checkpoint.spares = 1;
    EXPECT_THROW(run_summa_elastic(kSumma, opts), Error);
  }
  {
    RunOptions opts = elastic_opts(1);
    opts.sdc.mem_rate = 0.5;
    EXPECT_THROW(run_grid3d_elastic(kGrid3d, opts), Error);
  }
}

}  // namespace
}  // namespace camb::mm
