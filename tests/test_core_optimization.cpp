// Unit tests for core/optimization.hpp: the three solvers for Lemma 2 and
// the case classification.
#include "core/optimization.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"
#include "util/math.hpp"

namespace camb::core {
namespace {

TEST(Classify, PaperFigure2Cases) {
  // m = 9600, n = 2400, k = 600: m/n = 4, mn/k^2 = 64.
  EXPECT_EQ(classify_regime(9600, 2400, 600, 3), RegimeCase::kOneD);
  EXPECT_EQ(classify_regime(9600, 2400, 600, 36), RegimeCase::kTwoD);
  EXPECT_EQ(classify_regime(9600, 2400, 600, 512), RegimeCase::kThreeD);
}

TEST(Classify, BoundariesBelongToSmallerCase) {
  EXPECT_EQ(classify_regime(9600, 2400, 600, 4), RegimeCase::kOneD);
  EXPECT_EQ(classify_regime(9600, 2400, 600, 64), RegimeCase::kTwoD);
}

TEST(Classify, SquareAlwaysThreeD) {
  // m = n = k: m/n = 1 and mn/k^2 = 1, so any P >= 1 is in case 3.
  EXPECT_EQ(classify_regime(100, 100, 100, 1), RegimeCase::kOneD);  // P = 1 boundary
  EXPECT_EQ(classify_regime(100, 100, 100, 2), RegimeCase::kThreeD);
  EXPECT_EQ(classify_regime(100, 100, 100, 1000), RegimeCase::kThreeD);
}

TEST(Classify, RejectsBadInput) {
  EXPECT_THROW(classify_regime(1, 2, 3, 4), Error);   // not sorted
  EXPECT_THROW(classify_regime(3, 2, 0.5, 4), Error); // k < 1
  EXPECT_THROW(classify_regime(3, 2, 1, 0.5), Error); // P < 1
}

TEST(SolveAnalytic, Case1Values) {
  // P <= m/n: x* = (nk, mk/P, mn/P).
  const auto sol = solve_analytic({9600, 2400, 600, 3});
  EXPECT_EQ(sol.regime, RegimeCase::kOneD);
  EXPECT_DOUBLE_EQ(sol.x[0], 2400.0 * 600);
  EXPECT_DOUBLE_EQ(sol.x[1], 9600.0 * 600 / 3);
  EXPECT_DOUBLE_EQ(sol.x[2], 9600.0 * 2400 / 3);
}

TEST(SolveAnalytic, Case2Values) {
  const auto sol = solve_analytic({9600, 2400, 600, 36});
  EXPECT_EQ(sol.regime, RegimeCase::kTwoD);
  const double expected12 = std::sqrt(9600.0 * 2400 * 600 * 600 / 36);
  EXPECT_NEAR(sol.x[0], expected12, 1e-6);
  EXPECT_NEAR(sol.x[1], expected12, 1e-6);
  EXPECT_DOUBLE_EQ(sol.x[2], 9600.0 * 2400 / 36);
}

TEST(SolveAnalytic, Case3Values) {
  const auto sol = solve_analytic({9600, 2400, 600, 512});
  EXPECT_EQ(sol.regime, RegimeCase::kThreeD);
  const double expected = std::pow(9600.0 * 2400 * 600 / 512, 2.0 / 3.0);
  for (double xi : sol.x) EXPECT_NEAR(xi, expected, 1e-5);
}

TEST(SolveAnalytic, ContinuousAtCaseBoundaries) {
  // At P = m/n and P = mn/k^2 the adjacent case formulas coincide.
  const double m = 9600, n = 2400, k = 600;
  {
    const double P = m / n;  // = 4
    const auto c1 = solve_analytic({m, n, k, P});
    // Case 2 formula evaluated at the boundary:
    const double x12 = std::sqrt(m * n * k * k / P);
    EXPECT_NEAR(c1.x[0], x12, 1e-6);  // nk == sqrt(mnk^2/(m/n)) at boundary
    EXPECT_NEAR(c1.x[1], x12, 1e-6);
  }
  {
    const double P = m * n / (k * k);  // = 64
    const auto c2 = solve_analytic({m, n, k, P});
    const double x3d = std::pow(m * n * k / P, 2.0 / 3.0);
    for (double xi : c2.x) EXPECT_NEAR(xi, x3d, 1e-6);
  }
}

TEST(SolveAnalytic, SolutionIsPrimalFeasible) {
  for (double P : {1.0, 2.0, 4.0, 16.0, 64.0, 100.0, 4096.0}) {
    const Lemma2Problem prob{9600, 2400, 600, P};
    const auto sol = solve_analytic(prob);
    const auto floors = prob.variable_floors();
    for (int i = 0; i < 3; ++i) {
      EXPECT_GE(sol.x[static_cast<std::size_t>(i)] * (1 + 1e-12),
                floors[static_cast<std::size_t>(i)])
          << "P=" << P;
    }
    EXPECT_GE(sol.x[0] * sol.x[1] * sol.x[2] * (1 + 1e-9), prob.product_floor())
        << "P=" << P;
  }
}

TEST(SolveAnalytic, PEqualsOneIsOwnedData) {
  // With one processor the optimum is exactly the matrix sizes.
  const auto sol = solve_analytic({30, 20, 10, 1});
  EXPECT_DOUBLE_EQ(sol.x[0], 200);   // nk
  EXPECT_DOUBLE_EQ(sol.x[1], 300);   // mk
  EXPECT_DOUBLE_EQ(sol.x[2], 600);   // mn
}

TEST(SolveEnumerate, MatchesAnalyticAcrossRegimes) {
  for (double P : {1.0, 2.0, 3.0, 4.0, 5.0, 10.0, 36.0, 64.0, 65.0, 512.0,
                   10000.0}) {
    const Lemma2Problem prob{9600, 2400, 600, P};
    const auto analytic = solve_analytic(prob);
    const auto enumerated = solve_enumerate(prob);
    for (int i = 0; i < 3; ++i) {
      EXPECT_TRUE(camb::approx_eq(analytic.x[static_cast<std::size_t>(i)],
                                  enumerated[static_cast<std::size_t>(i)], 1e-9))
          << "P=" << P << " i=" << i << " analytic="
          << analytic.x[static_cast<std::size_t>(i)]
          << " enum=" << enumerated[static_cast<std::size_t>(i)];
    }
  }
}

TEST(SolveNumeric, MatchesAnalyticObjective) {
  for (double P : {2.0, 8.0, 36.0, 512.0}) {
    const Lemma2Problem prob{9600, 2400, 600, P};
    const auto analytic = solve_analytic(prob);
    const auto numeric = solve_numeric(prob);
    const double obj_numeric = numeric[0] + numeric[1] + numeric[2];
    EXPECT_TRUE(camb::approx_eq(analytic.objective, obj_numeric, 1e-4))
        << "P=" << P << " analytic=" << analytic.objective
        << " numeric=" << obj_numeric;
  }
}

TEST(SolveNumeric, FloorsOptimalWhenPIsOne) {
  const Lemma2Problem prob{30, 20, 10, 1};
  const auto numeric = solve_numeric(prob);
  EXPECT_DOUBLE_EQ(numeric[0], 200);
  EXPECT_DOUBLE_EQ(numeric[1], 300);
  EXPECT_DOUBLE_EQ(numeric[2], 600);
}

TEST(Lemma2Problem, Accessors) {
  const Lemma2Problem prob{6, 4, 2, 2};
  EXPECT_DOUBLE_EQ(prob.product_floor(), 576);  // (6*4*2/2)^2
  const auto floors = prob.variable_floors();
  EXPECT_DOUBLE_EQ(floors[0], 4);   // nk/P
  EXPECT_DOUBLE_EQ(floors[1], 6);   // mk/P
  EXPECT_DOUBLE_EQ(floors[2], 12);  // mn/P
}

}  // namespace
}  // namespace camb::core
