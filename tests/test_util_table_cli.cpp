// Unit tests for util/table.hpp and util/cli.hpp.
#include <gtest/gtest.h>

#include <sstream>

#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

namespace camb {
namespace {

TEST(Table, PrintAligned) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"longer_name", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("longer_name"), std::string::npos);
  EXPECT_NE(out.find("| value"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, ArityMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), Error);
}

TEST(Table, CsvEscaping) {
  Table t({"x"});
  t.add_row({"has,comma"});
  t.add_row({"has\"quote"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_NE(os.str().find("\"has,comma\""), std::string::npos);
  EXPECT_NE(os.str().find("\"has\"\"quote\""), std::string::npos);
}

TEST(Table, RowValuesFormatting) {
  Table t({"a", "b"});
  t.add_row_values({1.23456, 2.0}, 2);
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_NE(os.str().find("1.23,2.00"), std::string::npos);
}

TEST(Table, FormatHelpers) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt_int(-42), "-42");
  EXPECT_EQ(Table::fmt_sci(12345.0, 2), "1.23e+04");
}

TEST(Cli, ParsesBothFlagForms) {
  Cli cli;
  cli.add_flag("n", "dimension", "100");
  cli.add_flag("p", "processors", "8");
  const char* argv[] = {"prog", "--n", "64", "--p=16"};
  cli.parse(4, argv);
  EXPECT_EQ(cli.get_int("n"), 64);
  EXPECT_EQ(cli.get_int("p"), 16);
}

TEST(Cli, DefaultsApply) {
  Cli cli;
  cli.add_flag("m", "memory", "1024");
  const char* argv[] = {"prog"};
  cli.parse(1, argv);
  EXPECT_EQ(cli.get_int("m"), 1024);
}

TEST(Cli, UnknownFlagThrows) {
  Cli cli;
  cli.add_flag("n", "dimension", "100");
  const char* argv[] = {"prog", "--typo", "3"};
  EXPECT_THROW(cli.parse(3, argv), Error);
}

TEST(Cli, TypedParsing) {
  Cli cli;
  cli.add_flag("ratio", "a ratio", "0.5");
  cli.add_flag("flag", "a bool", "false");
  const char* argv[] = {"prog", "--ratio=2.25", "--flag", "true"};
  cli.parse(4, argv);
  EXPECT_DOUBLE_EQ(cli.get_double("ratio"), 2.25);
  EXPECT_TRUE(cli.get_bool("flag"));
}

TEST(Cli, MalformedNumbersThrow) {
  Cli cli;
  cli.add_flag("n", "dimension", "100");
  const char* argv[] = {"prog", "--n", "12x"};
  cli.parse(3, argv);
  EXPECT_THROW(cli.get_int("n"), std::exception);
}

TEST(Cli, HelpRequested) {
  Cli cli;
  cli.add_flag("n", "dimension", "100");
  const char* argv[] = {"prog", "--help"};
  cli.parse(2, argv);
  EXPECT_TRUE(cli.help_requested());
  EXPECT_NE(cli.usage("prog").find("--n"), std::string::npos);
}

}  // namespace
}  // namespace camb
