// Unit tests for the collectives library: correctness of every variant on
// every small group size, and exactness of the analytic cost model against
// the executed machine.
#include <gtest/gtest.h>

#include "collectives/allgather.hpp"
#include "collectives/allreduce.hpp"
#include "collectives/alltoall.hpp"
#include "collectives/bcast.hpp"
#include "collectives/coll_cost.hpp"
#include "collectives/gather_scatter.hpp"
#include "collectives/reduce.hpp"
#include "collectives/reduce_scatter.hpp"
#include "collectives/registry.hpp"
#include "machine/machine.hpp"

namespace camb {
namespace {

using coll::AllgatherAlgo;
using coll::ReduceScatterAlgo;

// ---------------------------------------------------------------------------
// All-Gather
// ---------------------------------------------------------------------------

void check_allgather(int p, AllgatherAlgo algo, const std::vector<i64>& counts) {
  Machine machine(p);
  machine.run([&](RankCtx& ctx) {
    const int me = ctx.rank();
    const i64 my_count = counts[static_cast<std::size_t>(me)];
    std::vector<double> local(static_cast<std::size_t>(my_count));
    const i64 offset = coll::counts_offset(counts, me);
    for (i64 j = 0; j < my_count; ++j) {
      local[static_cast<std::size_t>(j)] = static_cast<double>(offset + j);
    }
    const auto result =
        coll::allgather(coll::Comm::world(ctx), counts, local, algo);
    const i64 total = coll::counts_total(counts);
    ASSERT_EQ(static_cast<i64>(result.size()), total);
    for (i64 j = 0; j < total; ++j) {
      EXPECT_DOUBLE_EQ(result[static_cast<std::size_t>(j)],
                       static_cast<double>(j))
          << "p=" << p << " me=" << me << " j=" << j;
    }
  });
  // Exact per-rank received-word prediction.
  for (int r = 0; r < p; ++r) {
    EXPECT_EQ(machine.stats().rank_total(r).words_received(),
              coll::allgather_recv_words_exact(counts, r, algo))
        << "p=" << p << " rank=" << r;
  }
}

TEST(Allgather, RingAllGroupSizesEqualCounts) {
  for (int p = 1; p <= 12; ++p) {
    check_allgather(p, AllgatherAlgo::kRing, std::vector<i64>(p, 3));
  }
}

TEST(Allgather, RecursiveDoublingPowerOfTwo) {
  for (int p : {1, 2, 4, 8, 16}) {
    check_allgather(p, AllgatherAlgo::kRecursiveDoubling,
                    std::vector<i64>(p, 5));
  }
}

TEST(Allgather, BruckAllGroupSizes) {
  for (int p = 1; p <= 12; ++p) {
    check_allgather(p, AllgatherAlgo::kBruck, std::vector<i64>(p, 4));
  }
}

TEST(Allgather, UnequalCounts) {
  for (int p : {2, 3, 5, 8}) {
    std::vector<i64> counts;
    for (int i = 0; i < p; ++i) counts.push_back(1 + (i * 7) % 5);
    check_allgather(p, AllgatherAlgo::kRing, counts);
    check_allgather(p, AllgatherAlgo::kBruck, counts);
    if ((p & (p - 1)) == 0) {
      check_allgather(p, AllgatherAlgo::kRecursiveDoubling, counts);
    }
  }
}

TEST(Allgather, ZeroSizedBlocksSupported) {
  check_allgather(4, AllgatherAlgo::kRing, {0, 3, 0, 2});
  check_allgather(4, AllgatherAlgo::kBruck, {2, 0, 0, 1});
}

TEST(Allgather, RecursiveDoublingRejectsNonPowerOfTwo) {
  Machine machine(3);
  EXPECT_THROW(
      machine.run([&](RankCtx& ctx) {
        (void)coll::allgather_equal(coll::Comm::world(ctx),
                                    std::vector<double>{1.0},
                                    AllgatherAlgo::kRecursiveDoubling);
      }),
      Error);
}

TEST(Allgather, BandwidthOptimalWordCount) {
  // (1 - 1/p) * total received per rank, for equal blocks.
  const int p = 8;
  const i64 block = 10;
  Machine machine(p);
  machine.run([&](RankCtx& ctx) {
    (void)coll::allgather_equal(
        coll::Comm::world(ctx),
        std::vector<double>(static_cast<std::size_t>(block)));
  });
  const auto cost = coll::allgather_cost(p, block * p);
  for (int r = 0; r < p; ++r) {
    EXPECT_EQ(machine.stats().rank_total(r).words_received(), cost.recv_words);
    EXPECT_EQ(machine.stats().rank_total(r).words_sent(), cost.sent_words);
    EXPECT_EQ(machine.stats().rank_total(r).messages_sent, cost.messages);
  }
}

// ---------------------------------------------------------------------------
// Reduce-Scatter
// ---------------------------------------------------------------------------

void check_reduce_scatter(int p, ReduceScatterAlgo algo,
                          const std::vector<i64>& counts) {
  Machine machine(p);
  const i64 total = coll::counts_total(counts);
  machine.run([&](RankCtx& ctx) {
    const int me = ctx.rank();
    // Contribution of rank r at position j: (r + 1) * j; the sum over r at
    // position j is j * p (p + 1) / 2.
    std::vector<double> full(static_cast<std::size_t>(total));
    for (i64 j = 0; j < total; ++j) {
      full[static_cast<std::size_t>(j)] = static_cast<double>((me + 1) * j);
    }
    const auto segment =
        coll::reduce_scatter(coll::Comm::world(ctx), counts, full, algo);
    const i64 my_off = coll::counts_offset(counts, me);
    ASSERT_EQ(static_cast<i64>(segment.size()),
              counts[static_cast<std::size_t>(me)]);
    for (i64 j = 0; j < static_cast<i64>(segment.size()); ++j) {
      const double expected =
          static_cast<double>((my_off + j) * p * (p + 1) / 2);
      EXPECT_DOUBLE_EQ(segment[static_cast<std::size_t>(j)], expected)
          << "p=" << p << " me=" << me;
    }
  });
  for (int r = 0; r < p; ++r) {
    EXPECT_EQ(machine.stats().rank_total(r).words_received(),
              coll::reduce_scatter_recv_words_exact(counts, r, algo))
        << "p=" << p << " rank=" << r;
  }
}

TEST(ReduceScatter, RingAllGroupSizes) {
  for (int p = 1; p <= 12; ++p) {
    check_reduce_scatter(p, ReduceScatterAlgo::kRing, std::vector<i64>(p, 3));
  }
}

TEST(ReduceScatter, RecursiveHalvingPowerOfTwo) {
  for (int p : {1, 2, 4, 8, 16}) {
    check_reduce_scatter(p, ReduceScatterAlgo::kRecursiveHalving,
                         std::vector<i64>(p, 4));
  }
}

TEST(ReduceScatter, UnequalCounts) {
  for (int p : {2, 3, 5, 8}) {
    std::vector<i64> counts;
    for (int i = 0; i < p; ++i) counts.push_back(1 + (i * 3) % 4);
    check_reduce_scatter(p, ReduceScatterAlgo::kRing, counts);
    if ((p & (p - 1)) == 0) {
      check_reduce_scatter(p, ReduceScatterAlgo::kRecursiveHalving, counts);
    }
  }
}

TEST(ReduceScatter, BandwidthOptimalWordCount) {
  const int p = 8;
  const i64 seg = 6;
  const auto cost = coll::reduce_scatter_cost(p, seg * p);
  EXPECT_EQ(cost.recv_words, seg * (p - 1));
  EXPECT_EQ(cost.flops, seg * (p - 1));
  check_reduce_scatter(p, ReduceScatterAlgo::kRecursiveHalving,
                       std::vector<i64>(p, seg));
}

// ---------------------------------------------------------------------------
// Bcast / Reduce / All-Reduce / All-to-All / Gather / Scatter
// ---------------------------------------------------------------------------

TEST(Bcast, AllGroupSizesAndRoots) {
  for (int p = 1; p <= 9; ++p) {
    for (int root = 0; root < p; ++root) {
      Machine machine(p);
      machine.run([&](RankCtx& ctx) {
        std::vector<double> data;
        if (ctx.rank() == root) {
          data = {1.0, 2.0, 3.0};
        }
        coll::bcast(coll::Comm::world(ctx), root, data, 3);
        ASSERT_EQ(data.size(), 3u);
        EXPECT_DOUBLE_EQ(data[1], 2.0);
      });
      // Every non-root receives the payload exactly once.
      for (int r = 0; r < p; ++r) {
        EXPECT_EQ(machine.stats().rank_total(r).words_received(),
                  r == root ? 0 : 3);
      }
    }
  }
}

TEST(Bcast, PipelinedRingDeliversCorrectly) {
  for (int p : {1, 2, 3, 5, 8}) {
    for (int root = 0; root < p; ++root) {
      for (i64 segments : {1, 3, 7, 100}) {
        Machine machine(p);
        machine.run([&](RankCtx& ctx) {
          std::vector<double> data;
          if (ctx.rank() == root) {
            for (int j = 0; j < 23; ++j) data.push_back(j * 1.5);
          }
          coll::bcast(coll::Comm::world(ctx), root, data, 23,
                      coll::BcastAlgo::kPipelinedRing, segments);
          ASSERT_EQ(data.size(), 23u);
          for (int j = 0; j < 23; ++j) {
            ASSERT_DOUBLE_EQ(data[static_cast<std::size_t>(j)], j * 1.5)
                << "p=" << p << " root=" << root << " segments=" << segments;
          }
        });
        // Every non-root still receives exactly w words (the variants are
        // indistinguishable by word count).
        for (int r = 0; r < p; ++r) {
          const int v = (r - root + p) % p;
          EXPECT_EQ(machine.stats().rank_total(r).words_received(),
                    v == 0 ? 0 : 23);
        }
      }
    }
  }
}

TEST(Bcast, PipeliningWinsOnLargePayloadsInScheduledTime) {
  // The trade-off only the logical clock can see: same words everywhere,
  // but the ring streams segments while the binomial tree serializes whole
  // payloads through the root.
  const int p = 8;
  const i64 w = 1 << 14;
  auto scheduled = [&](coll::BcastAlgo algo) {
    Machine machine(p);
    machine.set_time_params(AlphaBeta{1e-5, 1e-6});
    machine.run([&](RankCtx& ctx) {
      std::vector<double> data;
      if (ctx.rank() == 0) data.assign(static_cast<std::size_t>(w), 1.0);
      coll::bcast(coll::Comm::world(ctx), 0, data, w, algo, 32);
    });
    return machine.critical_path_time();
  };
  EXPECT_LT(scheduled(coll::BcastAlgo::kPipelinedRing),
            scheduled(coll::BcastAlgo::kBinomial));
  // And the binomial tree wins for tiny payloads (latency-bound).
  const i64 tiny = 4;
  auto scheduled_tiny = [&](coll::BcastAlgo algo) {
    Machine machine(p);
    machine.set_time_params(AlphaBeta{1e-5, 1e-6});
    machine.run([&](RankCtx& ctx) {
      std::vector<double> data;
      if (ctx.rank() == 0) data.assign(static_cast<std::size_t>(tiny), 1.0);
      coll::bcast(coll::Comm::world(ctx), 0, data, tiny, algo, 32);
    });
    return machine.critical_path_time();
  };
  EXPECT_LT(scheduled_tiny(coll::BcastAlgo::kBinomial),
            scheduled_tiny(coll::BcastAlgo::kPipelinedRing));
}

TEST(Reduce, SumsOntoRoot) {
  for (int p = 1; p <= 9; ++p) {
    for (int root : {0, p - 1}) {
      Machine machine(p);
      machine.run([&](RankCtx& ctx) {
        std::vector<double> data = {static_cast<double>(ctx.rank() + 1), 1.0};
        const auto result =
            coll::reduce(coll::Comm::world(ctx), root, std::move(data));
        if (ctx.rank() == root) {
          ASSERT_EQ(result.size(), 2u);
          EXPECT_DOUBLE_EQ(result[0], p * (p + 1) / 2.0);
          EXPECT_DOUBLE_EQ(result[1], static_cast<double>(p));
        } else {
          EXPECT_TRUE(result.empty());
        }
      });
    }
  }
}

TEST(Allreduce, EveryRankGetsTheSum) {
  for (int p : {1, 2, 3, 5, 8, 13}) {
    Machine machine(p);
    machine.run([&](RankCtx& ctx) {
      std::vector<double> data(17);
      for (std::size_t j = 0; j < data.size(); ++j) {
        data[j] = static_cast<double>(ctx.rank()) + static_cast<double>(j);
      }
      const auto result =
          coll::allreduce(coll::Comm::world(ctx), std::move(data));
      ASSERT_EQ(result.size(), 17u);
      for (std::size_t j = 0; j < result.size(); ++j) {
        const double expected = p * (p - 1) / 2.0 + static_cast<double>(p * j);
        EXPECT_DOUBLE_EQ(result[j], expected) << "p=" << p << " j=" << j;
      }
    });
  }
}

TEST(Allreduce, PayloadSmallerThanGroup) {
  const int p = 8;
  Machine machine(p);
  machine.run([&](RankCtx& ctx) {
    std::vector<double> data = {1.0, 2.0, 3.0};  // 3 words, 8 ranks
    const auto result =
        coll::allreduce(coll::Comm::world(ctx), std::move(data));
    ASSERT_EQ(result.size(), 3u);
    EXPECT_DOUBLE_EQ(result[0], 8.0);
    EXPECT_DOUBLE_EQ(result[2], 24.0);
  });
}

TEST(Alltoall, PersonalizedExchange) {
  for (int p : {1, 2, 3, 5, 8}) {
    Machine machine(p);
    machine.run([&](RankCtx& ctx) {
      std::vector<std::vector<double>> blocks(static_cast<std::size_t>(p));
      for (int d = 0; d < p; ++d) {
        blocks[static_cast<std::size_t>(d)] = {
            static_cast<double>(ctx.rank() * 100 + d)};
      }
      const auto received = coll::alltoall(coll::Comm::world(ctx), blocks);
      ASSERT_EQ(received.size(), static_cast<std::size_t>(p));
      for (int s = 0; s < p; ++s) {
        ASSERT_EQ(received[static_cast<std::size_t>(s)].size(), 1u);
        EXPECT_DOUBLE_EQ(received[static_cast<std::size_t>(s)][0],
                         static_cast<double>(s * 100 + ctx.rank()));
      }
    });
    const auto cost = coll::alltoall_cost(p, 1);
    for (int r = 0; r < p; ++r) {
      EXPECT_EQ(machine.stats().rank_total(r).words_received(), cost.recv_words);
    }
  }
}

TEST(Alltoall, BruckMatchesPairwise) {
  for (int p : {1, 2, 3, 5, 8, 13}) {
    for (auto algo : {coll::AlltoallAlgo::kPairwise, coll::AlltoallAlgo::kBruck}) {
      Machine machine(p);
      machine.run([&](RankCtx& ctx) {
        std::vector<std::vector<double>> blocks(static_cast<std::size_t>(p));
        for (int d = 0; d < p; ++d) {
          blocks[static_cast<std::size_t>(d)] = {
              static_cast<double>(ctx.rank() * 1000 + d),
              static_cast<double>(d * 1000 + ctx.rank())};
        }
        const auto received =
            coll::alltoall(coll::Comm::world(ctx), blocks, algo);
        ASSERT_EQ(received.size(), static_cast<std::size_t>(p));
        for (int s = 0; s < p; ++s) {
          ASSERT_EQ(received[static_cast<std::size_t>(s)].size(), 2u);
          EXPECT_DOUBLE_EQ(received[static_cast<std::size_t>(s)][0],
                           static_cast<double>(s * 1000 + ctx.rank()))
              << "p=" << p << " algo=" << static_cast<int>(algo);
        }
      });
    }
  }
}

TEST(Alltoall, BruckLatencyBandwidthTradeoff) {
  // Bruck: ceil(log2 p) messages but more words; pairwise: p - 1 messages,
  // bandwidth-optimal words.
  const int p = 8;
  const i64 block = 16;
  auto run_with = [&](coll::AlltoallAlgo algo) {
    Machine machine(p);
    machine.run([&](RankCtx& ctx) {
      std::vector<std::vector<double>> blocks(
          static_cast<std::size_t>(p),
          std::vector<double>(static_cast<std::size_t>(block), 1.0));
      (void)coll::alltoall(coll::Comm::world(ctx), blocks, algo);
    });
    return machine.stats().rank_total(0);
  };
  const auto pairwise = run_with(coll::AlltoallAlgo::kPairwise);
  const auto bruck = run_with(coll::AlltoallAlgo::kBruck);
  EXPECT_EQ(pairwise.messages_sent, p - 1);
  EXPECT_EQ(bruck.messages_sent, coll::ceil_log2(p));
  EXPECT_EQ(pairwise.words_received(), (p - 1) * block);
  EXPECT_EQ(bruck.words_received(), coll::alltoall_bruck_recv_words(p, block));
  EXPECT_GT(bruck.words_received(), pairwise.words_received());
}

TEST(Alltoall, BruckRejectsUnequalBlocks) {
  Machine machine(4);
  EXPECT_THROW(
      machine.run([&](RankCtx& ctx) {
        std::vector<std::vector<double>> blocks = {
            {1.0}, {1.0, 2.0}, {1.0}, {1.0}};
        (void)coll::alltoall(coll::Comm::world(ctx), blocks,
                             coll::AlltoallAlgo::kBruck);
      }),
      Error);
}

TEST(GatherScatter, RoundTrip) {
  for (int p : {1, 2, 4, 7}) {
    Machine machine(p);
    std::vector<i64> counts;
    for (int i = 0; i < p; ++i) counts.push_back(i + 1);
    machine.run([&](RankCtx& ctx) {
      const int me = ctx.rank();
      std::vector<double> full;
      if (me == 0) {
        for (i64 j = 0; j < coll::counts_total(counts); ++j) {
          full.push_back(static_cast<double>(j));
        }
      }
      const coll::Comm world = coll::Comm::world(ctx);
      const auto mine = coll::scatter(world, 0, counts, full);
      ASSERT_EQ(static_cast<i64>(mine.size()),
                counts[static_cast<std::size_t>(me)]);
      const auto gathered = coll::gather(world, 0, counts, mine);
      if (me == 0) {
        ASSERT_EQ(static_cast<i64>(gathered.size()),
                  coll::counts_total(counts));
        for (std::size_t j = 0; j < gathered.size(); ++j) {
          EXPECT_DOUBLE_EQ(gathered[j], static_cast<double>(j));
        }
      } else {
        EXPECT_TRUE(gathered.empty());
      }
    });
  }
}

// ---------------------------------------------------------------------------
// Cost model details
// ---------------------------------------------------------------------------

TEST(CollCost, CeilLog2) {
  EXPECT_EQ(coll::ceil_log2(1), 0);
  EXPECT_EQ(coll::ceil_log2(2), 1);
  EXPECT_EQ(coll::ceil_log2(3), 2);
  EXPECT_EQ(coll::ceil_log2(8), 3);
  EXPECT_EQ(coll::ceil_log2(9), 4);
}

TEST(CollCost, RoundCounts) {
  EXPECT_EQ(coll::allgather_rounds(8, AllgatherAlgo::kRing), 7);
  EXPECT_EQ(coll::allgather_rounds(8, AllgatherAlgo::kRecursiveDoubling), 3);
  EXPECT_EQ(coll::allgather_rounds(7, AllgatherAlgo::kBruck), 3);
  EXPECT_EQ(coll::reduce_scatter_rounds(8, ReduceScatterAlgo::kRecursiveHalving), 3);
  EXPECT_EQ(coll::reduce_scatter_rounds(7, ReduceScatterAlgo::kRing), 6);
}

TEST(CollCost, GroupOfOneIsFree) {
  EXPECT_EQ(coll::allgather_cost(1, 100).recv_words, 0);
  EXPECT_EQ(coll::reduce_scatter_cost(1, 100).recv_words, 0);
  EXPECT_EQ(coll::bcast_cost(1, 100).recv_words, 0);
  EXPECT_EQ(coll::allreduce_cost(1, 100).recv_words, 0);
}

TEST(Registry, VariantsKnowTheirSupport) {
  for (const auto& variant : coll::allgather_variants()) {
    EXPECT_TRUE(variant.supports(8));
    if (variant.name == "recursive_doubling") {
      EXPECT_FALSE(variant.supports(6));
    } else {
      EXPECT_TRUE(variant.supports(6));
    }
  }
  EXPECT_EQ(coll::reduce_scatter_variants().size(), 2u);
}

TEST(Comm, ConstructionValidatesAndIndexes) {
  Machine machine(8);
  machine.run([&](RankCtx& ctx) {
    if (ctx.rank() == 4) {
      const coll::Comm comm(ctx, {4, 2, 7});
      EXPECT_EQ(comm.size(), 3);
      EXPECT_TRUE(comm.member());
      EXPECT_EQ(comm.my_index(), 0);
      EXPECT_EQ(comm.index_of(7), 2);
      EXPECT_EQ(comm.rank_at(0), 4);
      EXPECT_THROW(comm.index_of(9), Error);
      EXPECT_THROW(coll::Comm(ctx, {4, 4}), Error);  // duplicate member
      EXPECT_THROW(coll::Comm(ctx, {4, 8}), Error);  // rank out of range
      EXPECT_THROW(coll::Comm(ctx, {}), Error);      // empty comm
      EXPECT_THROW(coll::Comm(ctx, {2, 7}), Error);  // non-member construction
    } else if (ctx.rank() == 0) {
      // Recovery comms may be constructed by non-members (the survivor
      // bookkeeping discipline); they just may not communicate on them.
      const coll::Comm rec = coll::Comm::recovery(ctx, {4, 2, 7});
      EXPECT_FALSE(rec.member());
      EXPECT_TRUE(rec.is_recovery());
    }
  });
  EXPECT_EQ(coll::counts_total({1, 2, 3}), 6);
  EXPECT_EQ(coll::counts_offset({1, 2, 3}, 2), 3);
}

}  // namespace
}  // namespace camb
