// Property-based tests of the theory layer: parameterized sweeps over many
// (m, n, k, P) instances asserting the invariants DESIGN.md §3 lists.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/bounds.hpp"
#include "core/cost_eq3.hpp"
#include "core/grid.hpp"
#include "core/kkt.hpp"
#include "core/optimization.hpp"
#include "core/prior_bounds.hpp"
#include "util/rng.hpp"

namespace camb::core {
namespace {

// ---------------------------------------------------------------------------
// Sweep over a deterministic family of problem instances.
// ---------------------------------------------------------------------------

struct Instance {
  double m, n, k, P;
};

class BoundsSweep : public ::testing::TestWithParam<int> {
 protected:
  Instance instance() const {
    // Deterministic pseudo-random instance per index: dimensions spanning
    // 4 orders of magnitude, P spanning all three regimes.
    camb::Rng rng(0xB0CADE, static_cast<std::uint64_t>(GetParam()));
    double dims[3];
    for (double& d : dims) d = std::floor(std::exp(rng.uniform(0.5, 9.0)));
    std::sort(dims, dims + 3);
    const double P = std::floor(std::exp(rng.uniform(0.0, 12.0)));
    return {dims[2], dims[1], dims[0], std::max(1.0, P)};
  }
};

TEST_P(BoundsSweep, ThreeSolversAgree) {
  const auto [m, n, k, P] = instance();
  const Lemma2Problem prob{m, n, k, P};
  const auto analytic = solve_analytic(prob);
  const auto enumerated = solve_enumerate(prob);
  const double obj_enum = enumerated[0] + enumerated[1] + enumerated[2];
  EXPECT_NEAR(obj_enum, analytic.objective, 1e-9 * analytic.objective)
      << "m=" << m << " n=" << n << " k=" << k << " P=" << P;
  const auto numeric = solve_numeric(prob, 4000);
  const double obj_num = numeric[0] + numeric[1] + numeric[2];
  EXPECT_NEAR(obj_num, analytic.objective, 2e-3 * analytic.objective)
      << "m=" << m << " n=" << n << " k=" << k << " P=" << P;
}

TEST_P(BoundsSweep, KktCertificateHolds) {
  const auto [m, n, k, P] = instance();
  const Lemma2Problem prob{m, n, k, P};
  const auto sol = solve_analytic(prob);
  EXPECT_TRUE(verify_kkt(prob, sol.x, sol.mu, 1e-7).ok())
      << "m=" << m << " n=" << n << " k=" << k << " P=" << P;
}

TEST_P(BoundsSweep, BoundBelowEveryGridCost) {
  const auto [m, n, k, P] = instance();
  // Integer shape and a handful of integer grids around P.
  const Shape shape{static_cast<i64>(m), static_cast<i64>(n),
                    static_cast<i64>(k)};
  const i64 Pi = std::min<i64>(static_cast<i64>(P), 4096);
  const auto bound = memory_independent_bound(shape, static_cast<double>(Pi));
  for (const Grid3& g : all_grids(Pi)) {
    EXPECT_GE(alg1_cost_words(shape, g) * (1 + 1e-9) + 1e-6, bound.words)
        << "m=" << m << " n=" << n << " k=" << k << " P=" << Pi << " grid="
        << g.p1 << "x" << g.p2 << "x" << g.p3;
  }
}

TEST_P(BoundsSweep, BestIntegerGridNearOptimalWhenDivisible) {
  const auto [m, n, k, P] = instance();
  (void)P;
  // Scale dims up to multiples so divisibility holds for the searched grid.
  const Shape shape{static_cast<i64>(m), static_cast<i64>(n),
                    static_cast<i64>(k)};
  const i64 Pi = 1 + static_cast<i64>(GetParam()) % 64;
  const Grid3 g = best_integer_grid(shape, Pi);
  EXPECT_EQ(g.total(), Pi);
}

TEST_P(BoundsSweep, TheoremDMatchesLemma2) {
  const auto [m, n, k, P] = instance();
  const auto bound = memory_independent_bound_sorted(m, n, k, P);
  EXPECT_NEAR(bound.D, lemma2_objective(m, n, k, P), 1e-9 * bound.D);
}

TEST_P(BoundsSweep, PriorConstantsNeverExceedOurs) {
  const auto [m, n, k, P] = instance();
  const auto regime = classify_regime(m, n, k, P);
  const double lead = leading_term(regime, m, n, k, P);
  const double ours = theorem3_2022().constant(regime).value() * lead;
  for (const auto& row : table1_rows()) {
    const auto c = row.constant(regime);
    if (c.has_value()) {
      EXPECT_LE(c.value() * lead, ours * (1 + 1e-12));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ManyInstances, BoundsSweep, ::testing::Range(0, 100));

// ---------------------------------------------------------------------------
// Continuity of the bound across P at the regime boundaries.
// ---------------------------------------------------------------------------

class BoundaryContinuity
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BoundaryContinuity, DContinuousAtThresholds) {
  const auto [mi, ki] = GetParam();
  const double m = 100.0 * (mi + 1) * (mi + 1);
  const double k = 5.0 * (ki + 1);
  const double n = std::max(k, m / 16);
  if (!(m >= n && n >= k)) GTEST_SKIP();
  for (double boundary : {m / n, m * n / (k * k)}) {
    const double below = memory_independent_bound_sorted(m, n, k,
                                                         boundary * (1 - 1e-9))
                             .D;
    const double above = memory_independent_bound_sorted(m, n, k,
                                                         boundary * (1 + 1e-9))
                             .D;
    EXPECT_NEAR(below, above, 1e-6 * below)
        << "m=" << m << " n=" << n << " k=" << k << " boundary=" << boundary;
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, BoundaryContinuity,
                         ::testing::Combine(::testing::Range(0, 6),
                                            ::testing::Range(0, 6)));

// ---------------------------------------------------------------------------
// Tightness: Alg. 1's eq. 3 cost equals the bound on §5.2 grids.
// ---------------------------------------------------------------------------

struct TightCase {
  Shape shape;
  i64 P;
};

class TightnessSweep : public ::testing::TestWithParam<TightCase> {};

TEST_P(TightnessSweep, Eq3EqualsTheorem3OnOptimalGrid) {
  const auto& tc = GetParam();
  const Grid3 grid = exact_optimal_grid(tc.shape, tc.P);
  ASSERT_TRUE(grid_divides(tc.shape, grid));
  const double cost = alg1_cost_words(tc.shape, grid);
  const auto bound =
      memory_independent_bound(tc.shape, static_cast<double>(tc.P));
  EXPECT_NEAR(cost, bound.words, 1e-9 * std::max(1.0, bound.words))
      << "P=" << tc.P;
}

INSTANTIATE_TEST_SUITE_P(
    PaperShapes, TightnessSweep,
    ::testing::Values(
        // Paper Figure 2 shape across all three regimes.
        TightCase{Shape{9600, 2400, 600}, 1}, TightCase{Shape{9600, 2400, 600}, 2},
        TightCase{Shape{9600, 2400, 600}, 3}, TightCase{Shape{9600, 2400, 600}, 4},
        TightCase{Shape{9600, 2400, 600}, 16},
        TightCase{Shape{9600, 2400, 600}, 36},
        TightCase{Shape{9600, 2400, 600}, 64},
        TightCase{Shape{9600, 2400, 600}, 32768},
        TightCase{Shape{9600, 2400, 600}, 512},
        TightCase{Shape{9600, 2400, 600}, 4096},
        // Square shapes (always 3D regime for P > 1).
        TightCase{Shape{512, 512, 512}, 8}, TightCase{Shape{512, 512, 512}, 64},
        TightCase{Shape{512, 512, 512}, 512},
        // Other orientations of a rectangular shape.
        TightCase{Shape{600, 2400, 9600}, 36},
        TightCase{Shape{2400, 9600, 600}, 512}));

}  // namespace
}  // namespace camb::core
