// Unit tests for the working-set accounting: §6.2's memory statements,
// *measured* on the executing machine rather than modeled.
#include <gtest/gtest.h>

#include "core/cost_eq3.hpp"
#include "machine/machine.hpp"
#include "matmul/grid3d.hpp"
#include "matmul/grid3d_staged.hpp"

namespace camb {
namespace {

using core::Grid3;
using core::Shape;

TEST(WorkingSet, RaiiTracksPeak) {
  Machine machine(1);
  machine.run([&](RankCtx& ctx) {
    EXPECT_EQ(ctx.current_words(), 0);
    {
      WorkingSet a(ctx, 100);
      EXPECT_EQ(ctx.current_words(), 100);
      {
        WorkingSet b(ctx, 50);
        EXPECT_EQ(ctx.current_words(), 150);
      }
      EXPECT_EQ(ctx.current_words(), 100);
      EXPECT_EQ(ctx.peak_words(), 150);
    }
    EXPECT_EQ(ctx.current_words(), 0);
    EXPECT_EQ(ctx.peak_words(), 150);
  });
  EXPECT_EQ(machine.max_peak_memory_words(), 150);
}

TEST(WorkingSet, UnbalancedReleaseThrows) {
  Machine machine(1);
  EXPECT_THROW(machine.run([&](RankCtx& ctx) { ctx.release_words(1); }),
               Error);
}

TEST(WorkingSet, Alg1PeakEqualsPositiveTermsOfEq3) {
  // §6.2: "The local memory required by Alg. 1 matches the amount of
  // communication performed plus the data already owned" — the positive
  // terms of eq. 3.  Measured per rank on a divisible configuration.
  const Shape shape{24, 12, 8};
  const Grid3 grid{2, 3, 2};
  Machine machine(12);
  mm::Grid3dConfig cfg{shape, grid};
  machine.run([&](RankCtx& ctx) { (void)mm::grid3d_rank(ctx, cfg); });
  const auto terms = core::alg1_positive_terms(shape, grid);
  EXPECT_DOUBLE_EQ(static_cast<double>(machine.max_peak_memory_words()),
                   terms.sum());
}

TEST(WorkingSet, StagedPeakMatchesModelAndShrinks) {
  const Shape shape{96, 96, 96};
  const Grid3 grid{2, 2, 2};
  auto measured_peak = [&](i64 stages) {
    Machine machine(8);
    mm::Grid3dStagedConfig cfg{shape, grid, stages};
    machine.run([&](RankCtx& ctx) { (void)mm::grid3d_staged_rank(ctx, cfg); });
    return machine.max_peak_memory_words();
  };
  i64 previous = measured_peak(1);
  // One stage measures the full unstaged working set.
  EXPECT_DOUBLE_EQ(static_cast<double>(previous),
                   core::alg1_positive_terms(shape, grid).sum());
  for (i64 stages : {2, 4, 8}) {
    const i64 peak = measured_peak(stages);
    EXPECT_LT(peak, previous) << "stages=" << stages;
    // Exactly the analytic model under divisibility.
    EXPECT_DOUBLE_EQ(static_cast<double>(peak),
                     mm::grid3d_staged_peak_memory_words(
                         mm::Grid3dStagedConfig{shape, grid, stages}))
        << "stages=" << stages;
    previous = peak;
  }
  // And the floor is the gathered-B block (§6.2's irreducible term).
  const auto terms = core::alg1_positive_terms(shape, grid);
  EXPECT_GE(static_cast<double>(measured_peak(48)), terms.b_words);
}

TEST(WorkingSet, UninstrumentedProgramsReportZero) {
  Machine machine(4);
  machine.run([&](RankCtx& ctx) {
    if (ctx.rank() == 0) ctx.send(1, 0, {1.0});
    if (ctx.rank() == 1) (void)ctx.recv(0, 0);
  });
  EXPECT_EQ(machine.max_peak_memory_words(), 0);
}

}  // namespace
}  // namespace camb
