// Unit tests for machine/faults.hpp — the deterministic fault-injection
// layer: seed-reproducible decision sequences, delay/reordering legality
// within tag-match semantics, retry cost accounting (words counted once,
// latency charged per attempt), straggler clock scaling, fault trace
// records, and master-seed derivation.
#include "machine/faults.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "machine/machine.hpp"
#include "machine/mailbox.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace camb {
namespace {

// ---------------------------------------------------------------------------
// FaultPlan: determinism and bounds.
// ---------------------------------------------------------------------------

std::vector<SendFaults> drain_decisions(FaultPlan& plan, int src, int n) {
  std::vector<SendFaults> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) out.push_back(plan.decide_send(src));
  return out;
}

bool same_decision(const SendFaults& a, const SendFaults& b) {
  return a.failed_attempts == b.failed_attempts && a.delay == b.delay &&
         a.reorder_skip == b.reorder_skip;
}

TEST(FaultPlan, SameSeedSameInjectedSequence) {
  const FaultProfile profile = fault_profile_by_name("heavy");
  FaultPlan a(profile, 0xBEEF, 4);
  FaultPlan b(profile, 0xBEEF, 4);
  for (int src = 0; src < 4; ++src) {
    const auto seq_a = drain_decisions(a, src, 200);
    const auto seq_b = drain_decisions(b, src, 200);
    for (int k = 0; k < 200; ++k) {
      ASSERT_TRUE(same_decision(seq_a[static_cast<std::size_t>(k)],
                                seq_b[static_cast<std::size_t>(k)]))
          << "src=" << src << " k=" << k;
    }
    EXPECT_DOUBLE_EQ(a.straggler_factor(src), b.straggler_factor(src));
  }
  const FaultCounts ca = a.counts();
  const FaultCounts cb = b.counts();
  EXPECT_EQ(ca.decisions, cb.decisions);
  EXPECT_EQ(ca.delayed_messages, cb.delayed_messages);
  EXPECT_EQ(ca.total_retries, cb.total_retries);
  EXPECT_EQ(ca.failed_sends, cb.failed_sends);
  EXPECT_EQ(ca.reordered_messages, cb.reordered_messages);
  EXPECT_EQ(ca.stragglers, cb.stragglers);
}

TEST(FaultPlan, DifferentSeedsGiveDifferentSequences) {
  const FaultProfile profile = fault_profile_by_name("heavy");
  FaultPlan a(profile, 1, 2);
  FaultPlan b(profile, 2, 2);
  const auto seq_a = drain_decisions(a, 0, 100);
  const auto seq_b = drain_decisions(b, 0, 100);
  bool differ = false;
  for (int k = 0; k < 100 && !differ; ++k) {
    differ = !same_decision(seq_a[static_cast<std::size_t>(k)],
                            seq_b[static_cast<std::size_t>(k)]);
  }
  EXPECT_TRUE(differ);
}

TEST(FaultPlan, PerRankSequencesIndependentOfInterleaving) {
  // The decision a sender sees for its k-th send is a function of (seed,
  // sender, k) only — interleaving other ranks' decisions in between must
  // not change it.  This is what makes injection schedule-independent.
  const FaultProfile profile = fault_profile_by_name("heavy");
  FaultPlan sequential(profile, 7, 3);
  FaultPlan interleaved(profile, 7, 3);
  std::vector<std::vector<SendFaults>> seq(3), inter(3);
  for (int src = 0; src < 3; ++src) {
    seq[static_cast<std::size_t>(src)] = drain_decisions(sequential, src, 50);
  }
  for (int k = 0; k < 50; ++k) {
    for (int src = 2; src >= 0; --src) {  // different global order
      inter[static_cast<std::size_t>(src)].push_back(
          interleaved.decide_send(src));
    }
  }
  for (int src = 0; src < 3; ++src) {
    for (int k = 0; k < 50; ++k) {
      ASSERT_TRUE(same_decision(seq[static_cast<std::size_t>(src)]
                                   [static_cast<std::size_t>(k)],
                                inter[static_cast<std::size_t>(src)]
                                     [static_cast<std::size_t>(k)]))
          << "src=" << src << " k=" << k;
    }
  }
}

TEST(FaultPlan, NoneProfileInjectsNothing) {
  FaultPlan plan(fault_profile_by_name("none"), 99, 4);
  for (int src = 0; src < 4; ++src) {
    for (const SendFaults& f : drain_decisions(plan, src, 50)) {
      ASSERT_EQ(f.failed_attempts, 0);
      ASSERT_EQ(f.delay, 0.0);
      ASSERT_EQ(f.reorder_skip, 0);
    }
    EXPECT_DOUBLE_EQ(plan.straggler_factor(src), 1.0);
  }
  const FaultCounts counts = plan.counts();
  EXPECT_EQ(counts.decisions, 200);
  EXPECT_EQ(counts.delayed_messages, 0);
  EXPECT_EQ(counts.total_retries, 0);
  EXPECT_EQ(counts.failed_sends, 0);
  EXPECT_EQ(counts.stragglers, 0);
}

TEST(FaultPlan, DecisionsRespectProfileBounds) {
  const FaultProfile profile = fault_profile_by_name("heavy");
  FaultPlan plan(profile, 0xD15EA5E, 8);
  i64 delayed = 0, failed = 0;
  for (int src = 0; src < 8; ++src) {
    for (const SendFaults& f : drain_decisions(plan, src, 500)) {
      ASSERT_GE(f.delay, 0.0);
      ASSERT_LE(f.delay, profile.max_delay);
      ASSERT_GE(f.failed_attempts, 0);
      ASSERT_LE(f.failed_attempts, profile.max_retries);
      ASSERT_GE(f.reorder_skip, 0);
      ASSERT_LE(f.reorder_skip, profile.max_reorder_skip);
      if (f.delay > 0) ++delayed;
      if (f.failed_attempts > 0) ++failed;
    }
    ASSERT_GE(plan.straggler_factor(src), 1.0);
    ASSERT_LE(plan.straggler_factor(src), 1.0 + profile.max_slowdown);
  }
  // With 4000 draws at heavy probabilities, both fault kinds must fire.
  EXPECT_GT(delayed, 0);
  EXPECT_GT(failed, 0);
  const FaultCounts counts = plan.counts();
  EXPECT_EQ(counts.delayed_messages, delayed);
  EXPECT_EQ(counts.failed_sends, failed);
}

TEST(FaultPlan, RetryAlphaUnitsFollowExponentialBackoff) {
  EXPECT_DOUBLE_EQ(FaultPlan::retry_alpha_units(1), 1.0);  // fault-free send
  EXPECT_DOUBLE_EQ(FaultPlan::retry_alpha_units(2), 3.0);
  EXPECT_DOUBLE_EQ(FaultPlan::retry_alpha_units(3), 7.0);
  EXPECT_DOUBLE_EQ(FaultPlan::retry_alpha_units(4), 15.0);
}

TEST(FaultPlan, RejectsInvalidProfiles) {
  FaultProfile bad;
  bad.delay_prob = 1.5;
  EXPECT_THROW(FaultPlan(bad, 0, 2), Error);
  FaultProfile negative;
  negative.max_delay = -1.0;
  EXPECT_THROW(FaultPlan(negative, 0, 2), Error);
  EXPECT_THROW(fault_profile_by_name("does_not_exist"), Error);
}

TEST(FaultPlan, NamedProfilesAllConstruct) {
  for (const std::string& name : fault_profile_names()) {
    const FaultProfile profile = fault_profile_by_name(name);
    FaultPlan plan(profile, 1, 4);
    (void)plan.decide_send(0);
  }
}

// ---------------------------------------------------------------------------
// Mailbox: reordering legality.
// ---------------------------------------------------------------------------

TEST(Mailbox, ReorderSkipJumpsDifferentEnvelopesOnly) {
  Mailbox box;
  box.push(Message{0, 1, 0.0, {1.0}, ""});
  box.push(Message{2, 9, 0.0, {2.0}, ""}, /*reorder_skip=*/5);
  // The (2, 9) message jumped the queue: pop_any sees it first.
  EXPECT_EQ(box.pop_any().src, 2);
  EXPECT_EQ(box.pop_any().src, 0);
}

TEST(Mailbox, ReorderSkipNeverPassesSameEnvelope) {
  Mailbox box;
  box.push(Message{0, 1, 0.0, {1.0}, ""});
  box.push(Message{0, 1, 0.0, {2.0}, ""}, /*reorder_skip=*/5);
  // Same (src, tag): FIFO must hold no matter the requested jump.
  EXPECT_DOUBLE_EQ(box.pop_any().payload[0], 1.0);
  EXPECT_DOUBLE_EQ(box.pop_any().payload[0], 2.0);
}

TEST(Mailbox, ReorderSkipStopsAtSameEnvelopeBarrier) {
  Mailbox box;
  box.push(Message{3, 3, 0.0, {1.0}, ""});  // same envelope as the mover
  box.push(Message{0, 1, 0.0, {2.0}, ""});
  box.push(Message{3, 3, 0.0, {3.0}, ""}, /*reorder_skip=*/5);
  // The mover may pass (0,1) but must stop behind the earlier (3,3).
  EXPECT_DOUBLE_EQ(box.pop_matching(3, 3).payload[0], 1.0);
  EXPECT_DOUBLE_EQ(box.pop_matching(3, 3).payload[0], 3.0);
  EXPECT_EQ(box.pop_any().src, 0);
}

TEST(Mailbox, PopPathsDoNotMaterializeBucketsForSilentSources) {
  Mailbox box;
  box.mark_dead(7);
  box.mark_deviated(8, /*tag_base=*/100);
  Message out;
  EXPECT_EQ(box.pop_matching_or_failed(7, 1, 1e9, &out), RecvStatus::kSrcDead);
  EXPECT_EQ(box.pop_matching_or_failed(8, 1, 1e9, &out),
            RecvStatus::kSrcDeviated);
  // Neither failed receive may create storage: buckets exist only for
  // sources that actually pushed (the sparse-footprint contract).
  EXPECT_EQ(box.bucket_count(), 0u);
  box.push(Message{3, 1, 0.0, {1.0}, ""});
  EXPECT_EQ(box.bucket_count(), 1u);
  EXPECT_DOUBLE_EQ(box.pop_matching(3, 1).payload[0], 1.0);
  EXPECT_EQ(box.bucket_count(), 1u);  // emptied in place, not erased
}

// ---------------------------------------------------------------------------
// Machine-level: retry accounting, delays, stragglers, trace records.
// ---------------------------------------------------------------------------

TEST(FaultInjection, RetryChargesLatencyPerAttemptWordsOnce) {
  FaultProfile profile;
  profile.fail_prob = 1.0;  // every counted send needs retries
  profile.max_retries = 3;
  const std::uint64_t seed = 123;
  // A twin plan predicts what the machine's plan will inject for rank 0's
  // first (and only) send.
  FaultPlan oracle(profile, seed, 2);
  const SendFaults expected = oracle.decide_send(0);
  ASSERT_GT(expected.failed_attempts, 0);
  const int attempts = 1 + expected.failed_attempts;

  Machine machine(2);
  machine.enable_faults(profile, seed);
  double sender_clock = -1.0;
  machine.run([&](RankCtx& ctx) {
    if (ctx.rank() == 0) {
      ctx.send(1, 7, {1.0, 2.0, 3.0});
      sender_clock = ctx.clock();
    } else {
      const auto payload = ctx.recv(0, 7);
      ASSERT_EQ(payload.size(), 3u);
    }
  });
  // Words and the message counted exactly once despite the retries…
  EXPECT_EQ(machine.stats().rank_total(0).words_sent(), 3);
  EXPECT_EQ(machine.stats().rank_total(0).messages_sent, 1);
  EXPECT_EQ(machine.stats().rank_total(1).words_received(), 3);
  EXPECT_EQ(machine.stats().rank_total(1).messages_received, 1);
  // …while the sender's clock paid alpha per attempt with backoff
  // (alpha = beta = 1): 2^attempts - 1 latency units plus 3 payload words.
  EXPECT_DOUBLE_EQ(sender_clock,
                   FaultPlan::retry_alpha_units(attempts) + 3.0);
  EXPECT_EQ(machine.fault_plan()->counts().total_retries,
            expected.failed_attempts);
}

TEST(FaultInjection, SelfSendsAreFaultExempt) {
  FaultProfile profile;
  profile.fail_prob = 1.0;
  profile.max_retries = 3;
  profile.delay_prob = 1.0;
  profile.max_delay = 10.0;
  Machine machine(1);
  machine.enable_faults(profile, 5);
  machine.run([&](RankCtx& ctx) {
    ctx.send(0, 0, {1.0});
    (void)ctx.recv(0, 0);
    EXPECT_DOUBLE_EQ(ctx.clock(), 0.0);  // local data movement stays free
  });
  EXPECT_EQ(machine.fault_plan()->counts().decisions, 0);
}

TEST(FaultInjection, DelaysInflateTimeButNeverCounts) {
  const auto run_once = [](bool faulty) {
    auto machine = std::make_unique<Machine>(4);
    if (faulty) {
      FaultProfile profile;
      profile.delay_prob = 1.0;
      profile.max_delay = 20.0;
      profile.max_reorder_skip = 3;
      machine->enable_faults(profile, 42);
    }
    machine->run([&](RankCtx& ctx) {
      // A ring rotation: everyone sends to the right, receives from the left.
      const int p = ctx.nprocs();
      const int next = (ctx.rank() + 1) % p;
      const int prev = (ctx.rank() + p - 1) % p;
      for (int round = 0; round < 5; ++round) {
        ctx.send(next, round, {1.0, 2.0});
        (void)ctx.recv(prev, round);
      }
    });
    return machine;
  };
  const auto clean = run_once(false);
  const auto faulty = run_once(true);
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(faulty->stats().rank_total(r).words_sent(),
              clean->stats().rank_total(r).words_sent());
    EXPECT_EQ(faulty->stats().rank_total(r).words_received(),
              clean->stats().rank_total(r).words_received());
    EXPECT_EQ(faulty->stats().rank_total(r).messages_sent,
              clean->stats().rank_total(r).messages_sent);
  }
  EXPECT_GT(faulty->fault_plan()->counts().delayed_messages, 0);
  EXPECT_GT(faulty->critical_path_time(), clean->critical_path_time());
}

TEST(FaultInjection, StragglersScaleClockChargesOnly) {
  FaultProfile profile;
  profile.straggler_prob = 1.0;  // every rank is a straggler
  profile.max_slowdown = 2.0;
  Machine machine(2);
  machine.enable_faults(profile, 11);
  const double f0 = machine.fault_plan()->straggler_factor(0);
  ASSERT_GT(f0, 1.0);
  machine.run([&](RankCtx& ctx) {
    if (ctx.rank() == 0) {
      ctx.advance_clock(10.0);
      EXPECT_DOUBLE_EQ(ctx.clock(), ctx.straggler_factor() * 10.0);
      ctx.send(1, 0, {1.0});
      // The send charge (alpha + beta * 1 = 2) is scaled too.
      EXPECT_DOUBLE_EQ(ctx.clock(), ctx.straggler_factor() * 12.0);
    } else {
      (void)ctx.recv(0, 0);
    }
  });
  EXPECT_EQ(machine.stats().rank_total(0).words_sent(), 1);  // counts untouched
  EXPECT_EQ(machine.fault_plan()->counts().stragglers, 2);
}

TEST(FaultInjection, PerEnvelopeFifoSurvivesHeavyPerturbation) {
  // 100 same-envelope messages must arrive in send order: delivery delays
  // and reorderings are only legal across different (src, tag) envelopes.
  Machine machine(2);
  machine.enable_faults(fault_profile_by_name("heavy"), 77);
  machine.run([&](RankCtx& ctx) {
    if (ctx.rank() == 0) {
      for (int i = 0; i < 100; ++i) {
        ctx.send(1, 5, {static_cast<double>(i)});
      }
    } else {
      for (int i = 0; i < 100; ++i) {
        const auto payload = ctx.recv(0, 5);
        ASSERT_EQ(payload.size(), 1u);
        ASSERT_DOUBLE_EQ(payload[0], static_cast<double>(i)) << "i=" << i;
      }
    }
  });
}

TEST(FaultInjection, ReceiverClockSynchronizesToDelayedStamp) {
  FaultProfile profile;
  profile.delay_prob = 1.0;
  profile.max_delay = 50.0;
  FaultPlan oracle(profile, 3, 2);
  const SendFaults expected = oracle.decide_send(0);
  ASSERT_GT(expected.delay, 0.0);
  Machine machine(2);
  machine.enable_faults(profile, 3);
  machine.run([&](RankCtx& ctx) {
    if (ctx.rank() == 0) {
      ctx.send(1, 0, {1.0});
      EXPECT_DOUBLE_EQ(ctx.clock(), 2.0);  // delay is in the network, not here
    } else {
      (void)ctx.recv(0, 0);
      // Arrival stamp = sender clock (2) + injected delay.
      EXPECT_DOUBLE_EQ(ctx.clock(), 2.0 + expected.delay);
    }
  });
}

TEST(FaultInjection, TraceRecordsFaultEvents) {
  Machine machine(4);
  FaultProfile profile;
  profile.delay_prob = 0.7;
  profile.max_delay = 4.0;
  profile.fail_prob = 0.5;
  profile.max_retries = 2;
  machine.enable_faults(profile, 21);
  Trace& trace = machine.enable_trace();
  machine.run([&](RankCtx& ctx) {
    const int p = ctx.nprocs();
    for (int round = 0; round < 10; ++round) {
      const int next = (ctx.rank() + 1) % p;
      const int prev = (ctx.rank() + p - 1) % p;
      ctx.send(next, round, {1.0});
      (void)ctx.recv(prev, round);
    }
  });
  const auto events = trace.fault_events();
  ASSERT_GT(events.size(), 0u);
  for (const FaultEvent& event : events) {
    EXPECT_GE(event.src, 0);
    EXPECT_LT(event.src, 4);
    EXPECT_GE(event.dst, 0);
    EXPECT_LT(event.dst, 4);
    // Every fault record documents an actual perturbation.
    EXPECT_TRUE(event.failed_attempts > 0 || event.delay > 0.0);
  }
  // Each perturbed send produced exactly one fault record (delays and
  // retries on the same send share one record).
  const FaultCounts counts = machine.fault_plan()->counts();
  const i64 perturbed_sends = static_cast<i64>(events.size());
  EXPECT_LE(counts.failed_sends, perturbed_sends);
  EXPECT_LE(counts.delayed_messages, perturbed_sends);
  EXPECT_EQ(trace.event_count(), 4u * 10u);  // message log unaffected
}

TEST(FaultInjection, MachineRunsReproducibleFromFaultSeed) {
  const auto run_once = [](std::uint64_t seed) {
    Machine machine(4);
    machine.enable_faults(fault_profile_by_name("heavy"), seed);
    machine.run([&](RankCtx& ctx) {
      const int p = ctx.nprocs();
      for (int round = 0; round < 8; ++round) {
        const int partner = ctx.rank() ^ (1 << (round % 2));
        if (partner < p) (void)ctx.sendrecv(partner, round, {1.0, 2.0, 3.0});
      }
      ctx.barrier();
    });
    const FaultCounts counts = machine.fault_plan()->counts();
    return std::make_tuple(machine.critical_path_time(), counts.decisions,
                           counts.delayed_messages, counts.total_retries,
                           counts.failed_sends);
  };
  EXPECT_EQ(run_once(1234), run_once(1234));
  EXPECT_NE(std::get<0>(run_once(1234)), std::get<0>(run_once(99)));
}

// ---------------------------------------------------------------------------
// Master-seed derivation (the one-logged-value reproducibility contract).
// ---------------------------------------------------------------------------

TEST(SeedDerivation, DomainsAreIndependentAndStable) {
  EXPECT_EQ(derive_seed(42, kSeedDomainRankRng),
            derive_seed(42, kSeedDomainRankRng));
  EXPECT_NE(derive_seed(42, kSeedDomainRankRng),
            derive_seed(42, kSeedDomainFaults));
  EXPECT_NE(derive_seed(42, kSeedDomainFaults),
            derive_seed(43, kSeedDomainFaults));
}

TEST(SeedDerivation, DerivedStreamsDecorrelated) {
  // Rank RNG streams seeded from domain 0 and fault decisions from domain 1
  // must not collide for nearby master seeds.
  for (std::uint64_t master = 0; master < 64; ++master) {
    EXPECT_NE(derive_seed(master, kSeedDomainRankRng),
              derive_seed(master, kSeedDomainFaults))
        << master;
  }
}

}  // namespace
}  // namespace camb
