// Unit tests for core/prior_bounds.hpp: the Table 1 constants and the strict
// improvement of Theorem 3 in every regime.
#include "core/prior_bounds.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace camb::core {
namespace {

TEST(Table1, ConstantsMatchThePaper) {
  const auto aggarwal = aggarwal_chandra_snir_1990();
  EXPECT_FALSE(aggarwal.case1.has_value());
  EXPECT_FALSE(aggarwal.case2.has_value());
  EXPECT_NEAR(aggarwal.case3.value(), 0.63, 0.01);  // (1/2)^{2/3} ≈ .63

  const auto irony = irony_toledo_tiskin_2004();
  EXPECT_DOUBLE_EQ(irony.case3.value(), 0.5);

  const auto demmel = demmel_et_al_2013();
  EXPECT_DOUBLE_EQ(demmel.case1.value(), 0.64);           // 16/25
  EXPECT_NEAR(demmel.case2.value(), 0.82, 0.01);          // (2/3)^{1/2}
  EXPECT_DOUBLE_EQ(demmel.case3.value(), 1.0);

  const auto ours = theorem3_2022();
  EXPECT_DOUBLE_EQ(ours.case1.value(), 1.0);
  EXPECT_DOUBLE_EQ(ours.case2.value(), 2.0);
  EXPECT_DOUBLE_EQ(ours.case3.value(), 3.0);
}

TEST(Table1, Theorem3StrictlyImprovesEveryPriorInEveryRegime) {
  const auto ours = theorem3_2022();
  for (const auto& row : table1_rows()) {
    if (row.name == ours.name) continue;
    for (RegimeCase regime :
         {RegimeCase::kOneD, RegimeCase::kTwoD, RegimeCase::kThreeD}) {
      const auto prior = row.constant(regime);
      if (!prior.has_value()) continue;
      EXPECT_GT(ours.constant(regime).value(), prior.value())
          << row.name << " regime " << static_cast<int>(regime);
    }
  }
}

TEST(Table1, RowOrder) {
  const auto rows = table1_rows();
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows.front().name, "Aggarwal et al. 1990");
  EXPECT_EQ(rows.back().name, "Theorem 3 (this paper)");
}

TEST(LeadingTerm, MatchesTableHeader) {
  const double m = 9600, n = 2400, k = 600;
  EXPECT_DOUBLE_EQ(leading_term(RegimeCase::kOneD, m, n, k, 3), n * k);
  EXPECT_NEAR(leading_term(RegimeCase::kTwoD, m, n, k, 36),
              std::sqrt(m * n * k * k / 36), 1e-6);
  EXPECT_NEAR(leading_term(RegimeCase::kThreeD, m, n, k, 512),
              std::pow(m * n * k / 512, 2.0 / 3.0), 1e-6);
}

TEST(LeadingTerm, ContinuousAcrossCaseBoundaries) {
  const double m = 9600, n = 2400, k = 600;
  // At P = m/n, case 1 and case 2 leading terms coincide.
  EXPECT_NEAR(leading_term(RegimeCase::kOneD, m, n, k, 4),
              leading_term(RegimeCase::kTwoD, m, n, k, 4), 1e-6);
  // At P = mn/k^2, case 2 and case 3 leading terms coincide.
  EXPECT_NEAR(leading_term(RegimeCase::kTwoD, m, n, k, 64),
              leading_term(RegimeCase::kThreeD, m, n, k, 64), 1e-6);
}

}  // namespace
}  // namespace camb::core
