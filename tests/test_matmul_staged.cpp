// Unit tests for matmul/grid3d_staged.hpp — the §6.2 limited-memory variant:
// identical bandwidth, latency scaled by the stage count, peak memory scaled
// down by it.
#include "matmul/grid3d_staged.hpp"

#include <gtest/gtest.h>

#include "matmul/runner.hpp"
#include "matmul/time_model.hpp"

namespace camb::mm {
namespace {

using camb::core::Shape;

void expect_correct_and_counted(const Shape& shape, const Grid3& grid,
                                i64 stages) {
  Grid3dStagedConfig cfg{shape, grid, stages};
  const RunReport report = run_grid3d_staged(cfg, true);
  EXPECT_LE(report.max_abs_error, 1e-10)
      << "shape=(" << shape.n1 << "," << shape.n2 << "," << shape.n3
      << ") grid=" << grid.p1 << "x" << grid.p2 << "x" << grid.p3
      << " stages=" << stages;
  EXPECT_EQ(report.measured_critical_recv, report.predicted_words())
      << "stages=" << stages;
}

TEST(Grid3dStaged, OneStageMatchesUnstagedExactly) {
  const Shape shape{16, 12, 8};
  const Grid3 grid{2, 3, 2};
  const auto unstaged = run_grid3d(Grid3dConfig{shape, grid}, true);
  const auto staged = run_grid3d_staged(Grid3dStagedConfig{shape, grid, 1}, true);
  EXPECT_LE(staged.max_abs_error, 1e-10);
  EXPECT_EQ(staged.measured_critical_recv, unstaged.measured_critical_recv);
  EXPECT_EQ(staged.measured_critical_messages,
            unstaged.measured_critical_messages);
}

TEST(Grid3dStaged, CorrectAcrossStageCounts) {
  const Shape shape{24, 12, 8};
  const Grid3 grid{2, 2, 2};
  for (i64 stages : {1, 2, 3, 4, 6, 12}) {
    expect_correct_and_counted(shape, grid, stages);
  }
}

TEST(Grid3dStaged, MoreStagesThanRows) {
  // Strips of zero rows must be handled (empty collectives).
  expect_correct_and_counted(Shape{6, 8, 8}, Grid3{2, 2, 2}, 5);
}

TEST(Grid3dStaged, NonDivisibleEverything) {
  expect_correct_and_counted(Shape{13, 7, 5}, Grid3{3, 2, 2}, 3);
  expect_correct_and_counted(Shape{9, 9, 9}, Grid3{2, 3, 1}, 4);
}

TEST(Grid3dStaged, BandwidthUnaffectedByStaging) {
  // The §6.2 claim, executed: received words identical for every stage
  // count (same grid, divisible shape so strip rounding is exact).
  const Shape shape{24, 12, 8};
  const Grid3 grid{2, 2, 2};
  const auto one = run_grid3d_staged(Grid3dStagedConfig{shape, grid, 1}, false);
  for (i64 stages : {2, 3, 4, 6}) {
    const auto s = run_grid3d_staged(Grid3dStagedConfig{shape, grid, stages},
                                     false);
    EXPECT_EQ(s.measured_critical_recv, one.measured_critical_recv)
        << "stages=" << stages;
  }
}

TEST(Grid3dStaged, LatencyGrowsWithStages) {
  const Shape shape{24, 12, 8};
  const Grid3 grid{2, 2, 2};
  const auto one = run_grid3d_staged(Grid3dStagedConfig{shape, grid, 1}, false);
  const auto six = run_grid3d_staged(Grid3dStagedConfig{shape, grid, 6}, false);
  EXPECT_GT(six.measured_critical_messages, one.measured_critical_messages);
  // Message counts match the analytic model.
  EXPECT_EQ(six.measured_critical_messages,
            grid3d_staged_messages(Grid3dStagedConfig{shape, grid, 6}, 0));
}

TEST(Grid3dStaged, PeakMemoryShrinksWithStages) {
  const Grid3dStagedConfig one{Shape{96, 96, 96}, Grid3{2, 2, 2}, 1};
  Grid3dStagedConfig many = one;
  many.stages = 8;
  EXPECT_LT(grid3d_staged_peak_memory_words(many),
            grid3d_staged_peak_memory_words(one));
  // The B term is the floor that staging cannot remove (§6.2).
  const auto terms = camb::core::alg1_positive_terms(one.shape, one.grid);
  EXPECT_GE(grid3d_staged_peak_memory_words(many), terms.b_words);
  Grid3dStagedConfig huge = one;
  huge.stages = 1 << 20;
  EXPECT_NEAR(grid3d_staged_peak_memory_words(huge), terms.b_words,
              terms.b_words * 0.01);
}

TEST(Grid3dStaged, TimeModelShowsTheTradeoff) {
  // With expensive messages, staging costs time; bandwidth term unchanged.
  const Shape shape{96, 96, 96};
  const Grid3 grid{4, 4, 4};
  MachineParams params;
  params.alpha = 1e-3;
  const auto t1 = alg1_staged_time(shape, grid, 1, params);
  const auto t8 = alg1_staged_time(shape, grid, 8, params);
  EXPECT_GT(t8.latency, t1.latency);
  EXPECT_DOUBLE_EQ(t8.bandwidth, t1.bandwidth);
  EXPECT_DOUBLE_EQ(t8.compute, t1.compute);
}

TEST(Grid3dStaged, StillAttainsBoundOnOptimalGrid) {
  // Staging is bandwidth-neutral, so the bound is still attained exactly.
  const Shape shape{384, 96, 24};
  const Grid3 grid{8, 2, 1};  // the P = 16 optimal grid
  const auto report =
      run_grid3d_staged(Grid3dStagedConfig{shape, grid, 4}, true);
  EXPECT_LE(report.max_abs_error, 1e-10);
  EXPECT_NEAR(static_cast<double>(report.measured_critical_recv),
              report.lower_bound_words, 1e-9 * report.lower_bound_words);
}

}  // namespace
}  // namespace camb::mm
