// Acceptance tests for the ABFT (checksum-augmented) algorithms: the
// crash-recovery sweep — every single-rank crash position across many fault
// seeds completes and reconstructs C *bit-identically* (integer-valued
// inputs make every sum exact, so recovery is equality, not tolerance) —
// plus replay-from-master-seed determinism, the exact fault-free cost
// closed form, structured failure (not deadlock) for the unprotected
// algorithms, and heartbeat/algorithm phase separation.
#include "matmul/abft.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "machine/faults.hpp"
#include "matmul/runner.hpp"

namespace camb {
namespace {

constexpr core::Shape kSummaShape{18, 12, 9};
constexpr int kSummaGrid = 3;  // P = 9
constexpr core::Shape kGridShape{8, 6, 4};
constexpr core::Grid3 kGrid{2, 2, 2};  // P = 8

mm::RunOptions crash_opts(int rank, std::uint64_t master_seed,
                          i64 max_send_position = 8) {
  mm::RunOptions opts;
  opts.verify = mm::VerifyMode::kReference;
  opts.perturb.master_seed = master_seed;
  opts.crash.ranks = {rank};
  opts.crash.max_send_position = max_send_position;
  return opts;
}

// ---------------------------------------------------------------------------
// The crash-recovery sweep (the PR's acceptance bar): every crash rank,
// >= 16 fault seeds, both protected algorithms.
// ---------------------------------------------------------------------------

TEST(AbftSweep, SummaSurvivesEverySingleRankCrashAcrossSeeds) {
  int fired = 0;
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    for (int rank = 0; rank < kSummaGrid * kSummaGrid; ++rank) {
      const mm::RunReport report = mm::run_summa_abft(
          mm::SummaAbftConfig{mm::SummaConfig{kSummaShape, kSummaGrid}},
          crash_opts(rank, seed));
      ASSERT_TRUE(report.verified) << report.recovery.summary();
      // Integer inputs: reconstruction is exact, not approximately right.
      ASSERT_EQ(report.max_abs_error, 0.0) << report.recovery.summary();
      ASSERT_EQ(report.recovery.planned, std::vector<int>{rank});
      if (!report.recovery.crashed.empty()) {
        ASSERT_EQ(report.recovery.crashed, std::vector<int>{rank});
        ++fired;
      }
    }
  }
  // The sweep must actually exercise recovery, not dodge every crash.
  EXPECT_GT(fired, 16);
}

TEST(AbftSweep, Grid3dSurvivesEverySingleRankCrashAcrossSeeds) {
  int fired = 0;
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    for (int rank = 0; rank < 8; ++rank) {
      const mm::RunReport report = mm::run_grid3d_abft(
          mm::Grid3dAbftConfig{mm::Grid3dConfig{kGridShape, kGrid}},
          crash_opts(rank, seed));
      ASSERT_TRUE(report.verified) << report.recovery.summary();
      ASSERT_EQ(report.max_abs_error, 0.0) << report.recovery.summary();
      if (!report.recovery.crashed.empty()) {
        ASSERT_EQ(report.recovery.crashed, std::vector<int>{rank});
        ++fired;
      }
    }
  }
  EXPECT_GT(fired, 16);
}

// ---------------------------------------------------------------------------
// Replay: the master seed alone reproduces the whole scenario.
// ---------------------------------------------------------------------------

TEST(AbftReplay, MasterSeedAloneReproducesCrashAndRecovery) {
  const auto run = [] {
    return mm::run_summa_abft(
        mm::SummaAbftConfig{mm::SummaConfig{kSummaShape, kSummaGrid}},
        crash_opts(/*rank=*/4, /*master_seed=*/7, /*max_send_position=*/3));
  };
  const mm::RunReport a = run();
  const mm::RunReport b = run();
  ASSERT_EQ(a.recovery.crashed, std::vector<int>{4});  // the crash fired
  EXPECT_EQ(a.recovery.crashed, b.recovery.crashed);
  EXPECT_EQ(a.recovery.abandoned, b.recovery.abandoned);
  EXPECT_EQ(a.recovery.crash_seed, b.recovery.crash_seed);
  EXPECT_EQ(a.recovery.detection_events, b.recovery.detection_events);
  EXPECT_DOUBLE_EQ(a.recovery.first_detection_clock,
                   b.recovery.first_detection_clock);
  EXPECT_DOUBLE_EQ(a.recovery.last_detection_clock,
                   b.recovery.last_detection_clock);
  EXPECT_EQ(a.recovery.heartbeat_probes, b.recovery.heartbeat_probes);
  EXPECT_EQ(a.recovery.recovery_recv_words, b.recovery.recovery_recv_words);
  EXPECT_EQ(a.measured_critical_recv, b.measured_critical_recv);
  EXPECT_EQ(a.measured_critical_messages, b.measured_critical_messages);
  EXPECT_EQ(a.phase_recv, b.phase_recv);
}

// ---------------------------------------------------------------------------
// Fault-free cost: measured == the exact closed-form prediction.
// ---------------------------------------------------------------------------

TEST(AbftCost, FaultFreeSummaMatchesExactPrediction) {
  mm::RunOptions opts;
  opts.verify = mm::VerifyMode::kReference;
  const mm::RunReport report = mm::run_summa_abft(
      mm::SummaAbftConfig{mm::SummaConfig{kSummaShape, kSummaGrid}}, opts);
  EXPECT_EQ(report.measured_critical_recv, report.predicted_words());
  EXPECT_EQ(report.max_abs_error, 0.0);
  EXPECT_TRUE(report.recovery.abft);
  EXPECT_GT(report.recovery.encode_recv_words, 0);
  EXPECT_TRUE(report.recovery.crashed.empty());
}

TEST(AbftCost, FaultFreeGrid3dMatchesExactPrediction) {
  mm::RunOptions opts;
  opts.verify = mm::VerifyMode::kReference;
  const mm::RunReport report = mm::run_grid3d_abft(
      mm::Grid3dAbftConfig{mm::Grid3dConfig{kGridShape, kGrid}}, opts);
  EXPECT_EQ(report.measured_critical_recv, report.predicted_words());
  EXPECT_EQ(report.max_abs_error, 0.0);
  EXPECT_TRUE(report.recovery.abft);
}

// ---------------------------------------------------------------------------
// Unprotected algorithms: a crash is a structured error, never a deadlock.
// ---------------------------------------------------------------------------

TEST(AbftContrast, UnprotectedSummaFailsNamingTheCrashedRank) {
  try {
    mm::run_summa(mm::SummaConfig{kSummaShape, kSummaGrid},
                  crash_opts(/*rank=*/1, /*master_seed=*/3,
                             /*max_send_position=*/0));
    FAIL() << "expected PeerFailedError";
  } catch (const PeerFailedError& err) {
    EXPECT_EQ(err.failed_rank(), 1);
    EXPECT_TRUE(err.peer_crashed());
  }
}

TEST(AbftContrast, UnprotectedGrid3dFailsNamingTheCrashedRank) {
  try {
    mm::run_grid3d(mm::Grid3dConfig{kGridShape, kGrid},
                   crash_opts(/*rank=*/5, /*master_seed=*/3,
                              /*max_send_position=*/0));
    FAIL() << "expected PeerFailedError";
  } catch (const PeerFailedError& err) {
    EXPECT_EQ(err.failed_rank(), 5);
    EXPECT_TRUE(err.peer_crashed());
  }
}

// ---------------------------------------------------------------------------
// Detection cost separation: heartbeats live in their own phase.
// ---------------------------------------------------------------------------

TEST(AbftDetection, HeartbeatPhaseCarriesZeroWords) {
  const mm::RunReport report = mm::run_summa_abft(
      mm::SummaAbftConfig{mm::SummaConfig{kSummaShape, kSummaGrid}},
      crash_opts(/*rank=*/4, /*master_seed=*/7, /*max_send_position=*/3));
  ASSERT_FALSE(report.recovery.crashed.empty());
  EXPECT_GT(report.recovery.heartbeat_probes, 0);
  const auto heartbeat = report.phase_recv.find("heartbeat");
  if (heartbeat != report.phase_recv.end()) {
    EXPECT_EQ(heartbeat->second, 0);  // probes carry zero words
  }
}

// ---------------------------------------------------------------------------
// Configuration guards.
// ---------------------------------------------------------------------------

TEST(AbftGuards, SummaRejectsDegenerateGrids) {
  mm::RunOptions opts;
  EXPECT_THROW(mm::run_summa_abft(
                   mm::SummaAbftConfig{mm::SummaConfig{kSummaShape, 1}}, opts),
               Error);
}

TEST(AbftGuards, Grid3dRejectsSingletonParityFibers) {
  mm::RunOptions opts;
  opts.crash.ranks = {1};
  opts.crash.max_send_position = 0;
  // p2 = 1: no surviving fiber member can hold the parity — must refuse
  // (with a structured error), not silently return a wrong C.
  EXPECT_THROW(mm::run_grid3d_abft(
                   mm::Grid3dAbftConfig{mm::Grid3dConfig{kGridShape, {2, 1, 2}}},
                   opts),
               Error);
}

}  // namespace
}  // namespace camb
