// Perturbed stress sweep: every registered algorithm under deterministic
// fault injection (delays, reorderings, retried sends, stragglers) across
// many fault seeds.  The paper's accounting is schedule-independent, so the
// invariants must be *exactly* preserved under perturbation:
//
//   * results stay bit-identical to the unperturbed run (data movement and
//     reduction order are program-order facts, not timing facts),
//   * measured critical-path received words EQUAL the analytic predictor,
//   * word/message counters match the clean run exactly,
//   * only simulated time may grow — and it grows monotonically in the
//     injected delay magnitude.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "machine/machine.hpp"
#include "matmul/algorithm_registry.hpp"

namespace camb::mm {
namespace {

using camb::core::Shape;

struct SweepCase {
  Shape shape;
  i64 nprocs;
};

// Representative shapes: cubes, flat/skinny aspect ratios, indivisible
// dimensions; machine sizes covering every algorithm's applicability
// predicate (powers of two for CARMA, squares for SUMMA/Cannon, g*g*c for
// 2.5D, arbitrary for the grid3d family).
const SweepCase kCases[] = {
    {{12, 8, 6}, 4}, {{12, 8, 6}, 8},  {{16, 16, 16}, 8},
    {{13, 7, 5}, 4}, {{9, 14, 3}, 6},  {{24, 6, 10}, 9},
};

std::string case_label(const SweepCase& c, const std::string& algorithm) {
  return algorithm + " shape=(" + std::to_string(c.shape.n1) + "," +
         std::to_string(c.shape.n2) + "," + std::to_string(c.shape.n3) +
         ") P=" + std::to_string(c.nprocs);
}

/// Clean (fault-free) baseline for a (case, algorithm) pair, computed once
/// per process — the sweep compares every seed against the same baseline.
const RunReport& clean_baseline(std::size_t case_idx,
                                const AlgorithmInfo& algorithm) {
  static std::map<std::pair<std::size_t, std::string>, RunReport> cache;
  const auto key = std::make_pair(case_idx, algorithm.name);
  auto it = cache.find(key);
  if (it == cache.end()) {
    const SweepCase& c = kCases[case_idx];
    it = cache
             .emplace(key, algorithm.run_opts(
                               c.shape, c.nprocs,
                               RunOptions::verified(VerifyMode::kReference)))
             .first;
  }
  return it->second;
}

class PerturbedSweep : public ::testing::TestWithParam<int> {};

TEST_P(PerturbedSweep, InvariantsSurviveHeavyFaults) {
  RunOptions perturbed = RunOptions::verified(VerifyMode::kReference);
  perturbed.perturb.profile = "heavy";
  perturbed.perturb.master_seed = 0xC0FFEE;
  perturbed.perturb.fault_seed_override =
      1000 + static_cast<std::uint64_t>(GetParam());

  for (std::size_t ci = 0; ci < std::size(kCases); ++ci) {
    const SweepCase& c = kCases[ci];
    for (const auto& algorithm : algorithm_registry()) {
      if (!algorithm.supports(c.shape, c.nprocs)) continue;
      const RunReport& clean = clean_baseline(ci, algorithm);
      const RunReport faulty =
          algorithm.run_opts(c.shape, c.nprocs, perturbed);
      const std::string label =
          case_label(c, algorithm.name) + " " + faulty.faults.summary();

      // Bit-correct result: identical residual, not merely a small one.
      EXPECT_EQ(faulty.max_abs_error, clean.max_abs_error) << label;
      EXPECT_LE(faulty.max_abs_error, 1e-9) << label;

      // Measured communication equals the analytic predictor exactly —
      // the same equality the clean harness enforces.
      EXPECT_EQ(faulty.measured_critical_recv, faulty.predicted_words())
          << label;

      // Counters are schedule facts: perturbation must not move them.
      EXPECT_EQ(faulty.measured_critical_recv, clean.measured_critical_recv)
          << label;
      EXPECT_EQ(faulty.measured_critical_sent, clean.measured_critical_sent)
          << label;
      EXPECT_EQ(faulty.measured_critical_messages,
                clean.measured_critical_messages)
          << label;
      EXPECT_EQ(faulty.total_network_words, clean.total_network_words)
          << label;
      EXPECT_EQ(faulty.phase_recv, clean.phase_recv) << label;
      EXPECT_EQ(faulty.measured_peak_memory_words,
                clean.measured_peak_memory_words)
          << label;

      // Faults only ever cost time.
      EXPECT_GE(faulty.simulated_time, clean.simulated_time) << label;

      // The report carries the replay record.
      EXPECT_TRUE(faulty.faults.enabled) << label;
      EXPECT_EQ(faulty.faults.profile, "heavy") << label;
      EXPECT_EQ(faulty.faults.fault_seed,
                perturbed.perturb.fault_seed_override)
          << label;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(FaultSeeds, PerturbedSweep, ::testing::Range(0, 32));

TEST(PerturbedDeterminism, SameSeedSameRun) {
  // The whole point of seeded injection: a stress failure is replayable.
  RunOptions opts = RunOptions::verified(VerifyMode::kReference);
  opts.perturb.profile = "heavy";
  opts.perturb.master_seed = 7;
  const Shape shape{16, 16, 16};
  for (const auto& algorithm : algorithm_registry()) {
    if (!algorithm.supports(shape, 8)) continue;
    const RunReport a = algorithm.run_opts(shape, 8, opts);
    const RunReport b = algorithm.run_opts(shape, 8, opts);
    EXPECT_EQ(a.simulated_time, b.simulated_time) << algorithm.name;
    EXPECT_EQ(a.faults.injected_delays, b.faults.injected_delays)
        << algorithm.name;
    EXPECT_EQ(a.faults.total_retries, b.faults.total_retries)
        << algorithm.name;
    EXPECT_EQ(a.faults.reordered_messages, b.faults.reordered_messages)
        << algorithm.name;
    EXPECT_EQ(a.faults.stragglers, b.faults.stragglers) << algorithm.name;
  }
}

TEST(PerturbedMonotonicity, CriticalPathNondecreasingInDelayMagnitude) {
  // With a fixed seed, each send's delay is (1 - u)·max_delay for the same
  // uniform draw u, so delays scale pointwise with max_delay; logical clocks
  // are monotone (max, +) functions of the delays, hence the critical path
  // is nondecreasing in max_delay.  Verify on an all-pairs exchange, which
  // exercises cross-rank clock synchronization heavily.
  const auto run_with_max_delay = [](double max_delay) {
    FaultProfile profile;
    profile.delay_prob = 0.6;
    profile.max_delay = max_delay;
    profile.max_reorder_skip = 4;
    Machine machine(6);
    if (profile.any_faults()) machine.enable_faults(profile, 99);
    machine.run([](RankCtx& ctx) {
      const int p = ctx.nprocs();
      for (int round = 1; round < p; ++round) {
        const int dst = (ctx.rank() + round) % p;
        const int src = (ctx.rank() + p - round) % p;
        ctx.send(dst, round, {1.0, 2.0, 3.0, 4.0});
        (void)ctx.recv(src, round);
      }
      ctx.barrier();
    });
    return machine.critical_path_time();
  };
  const double delays[] = {0.0, 2.0, 8.0, 32.0};
  double previous = -1.0;
  for (const double d : delays) {
    const double t = run_with_max_delay(d);
    EXPECT_GE(t, previous) << "max_delay=" << d;
    previous = t;
  }
}

TEST(PerturbedSeedPlumbing, MasterSeedDerivesBothStreams) {
  // One logged master seed reproduces the run: the fault seed in the report
  // is the derived one unless explicitly overridden.
  RunOptions opts = RunOptions::verified(VerifyMode::kNone);
  opts.perturb.profile = "light";
  opts.perturb.master_seed = 12345;
  const RunReport derived = algorithm_by_name("grid3d_optimal")
                                .run_opts(Shape{8, 8, 8}, 4, opts);
  EXPECT_EQ(derived.faults.master_seed, 12345u);
  EXPECT_EQ(derived.faults.fault_seed, opts.perturb.fault_seed());
  EXPECT_NE(derived.faults.fault_seed, 12345u);  // domain-separated

  opts.perturb.fault_seed_override = 777;
  const RunReport overridden = algorithm_by_name("grid3d_optimal")
                                   .run_opts(Shape{8, 8, 8}, 4, opts);
  EXPECT_EQ(overridden.faults.fault_seed, 777u);
}

}  // namespace
}  // namespace camb::mm
