// Property-based tests of the collectives: parameterized sweeps over group
// sizes, payload sizes, and algorithm variants, asserting correctness and
// bandwidth-optimal word counts everywhere.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <tuple>

#include "collectives/allgather.hpp"
#include "collectives/allreduce.hpp"
#include "collectives/coll_cost.hpp"
#include "collectives/reduce_scatter.hpp"
#include "collectives/registry.hpp"
#include "machine/faults.hpp"
#include "machine/machine.hpp"
#include "util/rng.hpp"

namespace camb {
namespace {

// Group sizes 1..17 cover: trivial, powers of two, primes, odd composites.
class GroupSweep : public ::testing::TestWithParam<std::tuple<int, int>> {
 protected:
  int group_size() const { return std::get<0>(GetParam()); }
  i64 block_words() const { return std::get<1>(GetParam()); }
};

TEST_P(GroupSweep, AllgatherVariantsCorrectAndOptimal) {
  const int p = group_size();
  const i64 block = block_words();
  for (const auto& variant : coll::allgather_variants()) {
    if (!variant.supports(p)) continue;
    Machine machine(p);
    machine.run([&](RankCtx& ctx) {
      std::vector<double> local(static_cast<std::size_t>(block));
      for (i64 j = 0; j < block; ++j) {
        local[static_cast<std::size_t>(j)] =
            static_cast<double>(ctx.rank() * block + j);
      }
      const auto out =
          coll::allgather_equal(coll::Comm::world(ctx), local, variant.algo);
      ASSERT_EQ(static_cast<i64>(out.size()), block * p);
      for (i64 j = 0; j < block * p; ++j) {
        ASSERT_DOUBLE_EQ(out[static_cast<std::size_t>(j)],
                         static_cast<double>(j))
            << variant.name << " p=" << p;
      }
    });
    const auto cost = coll::allgather_cost(p, block * p, variant.algo);
    for (int r = 0; r < p; ++r) {
      const auto totals = machine.stats().rank_total(r);
      EXPECT_EQ(totals.words_received(), cost.recv_words) << variant.name;
      EXPECT_EQ(totals.words_sent(), cost.sent_words) << variant.name;
      EXPECT_EQ(totals.messages_sent, cost.messages) << variant.name;
    }
  }
}

TEST_P(GroupSweep, ReduceScatterVariantsCorrectAndOptimal) {
  const int p = group_size();
  const i64 seg = block_words();
  for (const auto& variant : coll::reduce_scatter_variants()) {
    if (!variant.supports(p)) continue;
    Machine machine(p);
    machine.run([&](RankCtx& ctx) {
      std::vector<double> full(static_cast<std::size_t>(seg * p));
      for (i64 j = 0; j < seg * p; ++j) {
        full[static_cast<std::size_t>(j)] =
            static_cast<double>(j % (ctx.rank() + 2));
      }
      const auto out = coll::reduce_scatter_equal(coll::Comm::world(ctx), full,
                                                  variant.algo);
      // Verify against a serial recomputation of this rank's segment.
      for (i64 j = 0; j < seg; ++j) {
        double expected = 0;
        const i64 pos = ctx.rank() * seg + j;
        for (int r = 0; r < p; ++r) expected += static_cast<double>(pos % (r + 2));
        ASSERT_DOUBLE_EQ(out[static_cast<std::size_t>(j)], expected)
            << variant.name << " p=" << p;
      }
    });
    const auto cost = coll::reduce_scatter_cost(p, seg * p, variant.algo);
    for (int r = 0; r < p; ++r) {
      EXPECT_EQ(machine.stats().rank_total(r).words_received(), cost.recv_words)
          << variant.name;
      EXPECT_EQ(machine.stats().rank_total(r).messages_sent, cost.messages)
          << variant.name;
    }
  }
}

TEST_P(GroupSweep, AllgatherThenReduceScatterRoundTripVolume) {
  // Composing AG + RS moves 2 (1 - 1/p) w words per rank — the §5.1
  // accounting used to price Algorithm 1's input and output collectives.
  const int p = group_size();
  const i64 block = block_words();
  Machine machine(p);
  machine.run([&](RankCtx& ctx) {
    std::vector<double> local(static_cast<std::size_t>(block), 1.0);
    const coll::Comm world = coll::Comm::world(ctx);
    const auto gathered = coll::allgather_equal(world, local);
    const auto segment = coll::reduce_scatter_equal(world, gathered);
    for (double v : segment) ASSERT_DOUBLE_EQ(v, static_cast<double>(p));
  });
  const i64 moved = block * p - block;
  for (int r = 0; r < p; ++r) {
    EXPECT_EQ(machine.stats().rank_total(r).words_received(), 2 * moved);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesByPayload, GroupSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 7, 8, 9, 11, 13, 16, 17),
                       ::testing::Values(1, 4, 9)));

// ---------------------------------------------------------------------------
// The same collective properties under heavy fault injection: delays,
// reorderings, retried sends, and stragglers must not change what arrives
// or what is counted — only simulated time (coll_cost prices words and
// messages, both schedule facts).
// ---------------------------------------------------------------------------

class FaultedGroupSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {
 protected:
  int group_size() const { return std::get<0>(GetParam()); }
  std::uint64_t fault_seed() const {
    return 0x5EED0000 + static_cast<std::uint64_t>(std::get<1>(GetParam()));
  }
};

TEST_P(FaultedGroupSweep, AllgatherVariantsCorrectUnderFaults) {
  const int p = group_size();
  const i64 block = 5;
  for (const auto& variant : coll::allgather_variants()) {
    if (!variant.supports(p)) continue;
    Machine machine(p);
    machine.enable_faults(fault_profile_by_name("heavy"), fault_seed());
    machine.run([&](RankCtx& ctx) {
      std::vector<double> local(static_cast<std::size_t>(block));
      for (i64 j = 0; j < block; ++j) {
        local[static_cast<std::size_t>(j)] =
            static_cast<double>(ctx.rank() * block + j);
      }
      const auto out =
          coll::allgather_equal(coll::Comm::world(ctx), local, variant.algo);
      ASSERT_EQ(static_cast<i64>(out.size()), block * p);
      for (i64 j = 0; j < block * p; ++j) {
        ASSERT_DOUBLE_EQ(out[static_cast<std::size_t>(j)],
                         static_cast<double>(j))
            << variant.name << " p=" << p << " seed=" << fault_seed();
      }
    });
    const auto cost = coll::allgather_cost(p, block * p, variant.algo);
    for (int r = 0; r < p; ++r) {
      const auto totals = machine.stats().rank_total(r);
      EXPECT_EQ(totals.words_received(), cost.recv_words)
          << variant.name << " seed=" << fault_seed();
      EXPECT_EQ(totals.words_sent(), cost.sent_words)
          << variant.name << " seed=" << fault_seed();
      EXPECT_EQ(totals.messages_sent, cost.messages)
          << variant.name << " seed=" << fault_seed();
    }
  }
}

TEST_P(FaultedGroupSweep, ReduceScatterVariantsCorrectUnderFaults) {
  const int p = group_size();
  const i64 seg = 3;
  for (const auto& variant : coll::reduce_scatter_variants()) {
    if (!variant.supports(p)) continue;
    Machine machine(p);
    machine.enable_faults(fault_profile_by_name("heavy"), fault_seed());
    machine.run([&](RankCtx& ctx) {
      std::vector<double> full(static_cast<std::size_t>(seg * p));
      for (i64 j = 0; j < seg * p; ++j) {
        full[static_cast<std::size_t>(j)] =
            static_cast<double>(j % (ctx.rank() + 2));
      }
      const auto out = coll::reduce_scatter_equal(coll::Comm::world(ctx), full,
                                                  variant.algo);
      for (i64 j = 0; j < seg; ++j) {
        double expected = 0;
        const i64 pos = ctx.rank() * seg + j;
        for (int r = 0; r < p; ++r) {
          expected += static_cast<double>(pos % (r + 2));
        }
        ASSERT_DOUBLE_EQ(out[static_cast<std::size_t>(j)], expected)
            << variant.name << " p=" << p << " seed=" << fault_seed();
      }
    });
    const auto cost = coll::reduce_scatter_cost(p, seg * p, variant.algo);
    for (int r = 0; r < p; ++r) {
      EXPECT_EQ(machine.stats().rank_total(r).words_received(), cost.recv_words)
          << variant.name << " seed=" << fault_seed();
      EXPECT_EQ(machine.stats().rank_total(r).messages_sent, cost.messages)
          << variant.name << " seed=" << fault_seed();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesBySeed, FaultedGroupSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 7, 8, 9, 11, 13, 16, 17),
                       ::testing::Range(0, 8)));

// ---------------------------------------------------------------------------
// Randomized payload correctness: allreduce as the composite oracle.
// ---------------------------------------------------------------------------

class AllreduceSweep : public ::testing::TestWithParam<int> {};

TEST_P(AllreduceSweep, MatchesSerialSum) {
  const int p = 1 + GetParam() % 13;
  const i64 words = 1 + (GetParam() * 37) % 100;
  Machine machine(p);
  machine.run([&](RankCtx& ctx) {
    Rng rng(static_cast<std::uint64_t>(GetParam()),
            static_cast<std::uint64_t>(ctx.rank()));
    std::vector<double> data(static_cast<std::size_t>(words));
    for (auto& v : data) v = std::floor(rng.uniform(-8.0, 8.0));
    const std::vector<double> original = data;
    const auto result =
        coll::allreduce(coll::Comm::world(ctx), std::move(data));
    // Recompute the expected sum serially from every rank's deterministic
    // stream (exact: integer-valued payloads).
    std::vector<double> expected(static_cast<std::size_t>(words), 0.0);
    for (int r = 0; r < p; ++r) {
      Rng peer(static_cast<std::uint64_t>(GetParam()),
               static_cast<std::uint64_t>(r));
      for (i64 j = 0; j < words; ++j) {
        expected[static_cast<std::size_t>(j)] +=
            std::floor(peer.uniform(-8.0, 8.0));
      }
    }
    for (i64 j = 0; j < words; ++j) {
      ASSERT_DOUBLE_EQ(result[static_cast<std::size_t>(j)],
                       expected[static_cast<std::size_t>(j)])
          << "p=" << p << " j=" << j;
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Randomized, AllreduceSweep, ::testing::Range(0, 40));

}  // namespace
}  // namespace camb
