// Unit tests for src/planner: the grid-planner query engine.
//
// The bar the planner must clear (ISSUE: "every cached/batched answer
// bit-identical to the uncached path") is asserted here field-for-field
// with exact comparisons — no tolerances anywhere in this file.
#include "planner/planner.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/bounds.hpp"
#include "core/cost_eq3.hpp"
#include "core/grid.hpp"
#include "util/error.hpp"

namespace camb::planner {
namespace {

const core::Shape kPaperShape{9600, 2400, 600};  // Figure 2's running example

/// Deterministic splitmix64 stream for the randomized sweeps.
struct Rng {
  std::uint64_t state;

  std::uint64_t next() {
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t x = state;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  i64 range(i64 lo, i64 hi) {  // inclusive
    return lo + static_cast<i64>(next() %
                                 static_cast<std::uint64_t>(hi - lo + 1));
  }
};

/// Exact (bitwise) equality between a planner answer and the raw core calls
/// it memoizes.  EXPECT_* (not tolerances) so a single flipped bit fails.
void expect_matches_core(const PlanRequest& req, const PlanResult& got) {
  SCOPED_TRACE("shape " + std::to_string(req.shape.n1) + "x" +
               std::to_string(req.shape.n2) + "x" +
               std::to_string(req.shape.n3) + " P=" + std::to_string(req.P));
  const PlanResult oracle = plan_uncached(req);
  EXPECT_EQ(got.grid, oracle.grid);
  EXPECT_EQ(got.cost_words, oracle.cost_words);
  EXPECT_EQ(got.regime, oracle.regime);
  EXPECT_EQ(got.bound_words, oracle.bound_words);
  EXPECT_EQ(got.ratio, oracle.ratio);
  EXPECT_EQ(got.real.p, oracle.real.p);
  EXPECT_EQ(got.real.q, oracle.real.q);
  EXPECT_EQ(got.real.r, oracle.real.r);
  EXPECT_EQ(got.exact_grid, oracle.exact_grid);

  // And the oracle itself against the raw core entry points.
  EXPECT_EQ(got.grid, core::best_integer_grid(req.shape, req.P));
  EXPECT_EQ(got.cost_words, core::alg1_cost_words(req.shape, got.grid));
  const core::BoundResult bound =
      core::memory_independent_bound(req.shape, static_cast<double>(req.P));
  EXPECT_EQ(got.regime, bound.regime);
  EXPECT_EQ(got.bound_words, bound.words);
  const core::SortedDims d = core::sort_dims(req.shape);
  const core::RealGrid real = core::optimal_grid_real(
      static_cast<double>(d.m), static_cast<double>(d.n),
      static_cast<double>(d.k), static_cast<double>(req.P));
  EXPECT_EQ(got.real, real);
  core::Grid3 exact;
  EXPECT_EQ(got.exact_grid,
            core::try_exact_optimal_grid(req.shape, req.P, &exact) &&
                exact == got.grid);
}

TEST(FactorCache, TablesMatchFreshEnumeration) {
  FactorCache cache;
  for (const i64 p : {1, 2, 7, 12, 60, 101, 1024, 720720}) {
    const auto table = cache.get(p);
    EXPECT_EQ(table->p, p);
    EXPECT_EQ(table->triples, factor_triples(p));
    std::vector<i64> divisors;
    divisors_into(p, divisors);
    EXPECT_EQ(table->divisors, divisors);
    // Second get is a hit and returns the same immutable table.
    EXPECT_EQ(cache.get(p).get(), table.get());
  }
  const CacheCounters counters = cache.counters();
  EXPECT_EQ(counters.misses, 8u);
  EXPECT_EQ(counters.hits, 8u);
  EXPECT_THROW(cache.get(0), Error);
}

TEST(FactorCache, TripleCountMatchesClosedForm) {
  // d_3(p) = prod (e_i + 1)(e_i + 2) / 2 over the prime factorization.
  EXPECT_EQ(factor_triple_count(1), 1);
  EXPECT_EQ(factor_triple_count(101), 3);       // prime
  EXPECT_EQ(factor_triple_count(8), 10);        // 2^3 -> 4*5/2
  EXPECT_EQ(factor_triple_count(12), 18);       // 2^2*3 -> 6*3
  EXPECT_EQ(factor_triple_count(60), 54);       // 2^2*3*5
  EXPECT_EQ(factor_triple_count(720720), 7290);
  for (i64 p = 1; p <= 300; ++p) {
    EXPECT_EQ(static_cast<i64>(factor_triples(p).size()),
              factor_triple_count(p))
        << "p = " << p;
  }
}

TEST(Planner, SingleProcessor) {
  GridPlanner planner;
  const PlanResult result = planner.plan({kPaperShape, 1});
  EXPECT_EQ(result.grid, (core::Grid3{1, 1, 1}));
  EXPECT_EQ(result.bound_words, 0.0);  // one rank communicates nothing
  EXPECT_EQ(result.ratio, 1.0);
  EXPECT_TRUE(result.exact_grid);
  expect_matches_core({kPaperShape, 1}, result);
}

TEST(Planner, PrimeProcessorCounts) {
  GridPlanner planner;
  for (const i64 P : {2, 101, 104729}) {  // 104729 = the 10000th prime
    const PlanRequest req{kPaperShape, P};
    expect_matches_core(req, planner.plan(req));
  }
}

TEST(Planner, HugePrimeFactors) {
  // P with a huge prime factor exercises the sqrt-bounded enumeration:
  // 2 * 499979 and the prime 999983 itself.
  GridPlanner planner;
  for (const i64 P : {999958, 999983}) {
    const PlanRequest req{kPaperShape, P};
    expect_matches_core(req, planner.plan(req));
  }
}

TEST(Planner, ExtremeAspectRatios) {
  GridPlanner planner;
  // n1 >> n2*n3 pushes deep into the 1D regime; the transpose orientation
  // checks the axis mapping; the thin-k shape sits on the 2D/3D boundary.
  const core::Shape shapes[] = {{i64{1} << 20, 2, 2},
                                {2, 2, i64{1} << 20},
                                {1, 1, 1},
                                {65536, 256, 1}};
  for (const core::Shape& shape : shapes) {
    for (const i64 P : {1, 3, 64, 1000}) {
      const PlanRequest req{shape, P};
      expect_matches_core(req, planner.plan(req));
    }
  }
  // Deep 1D: the regime really is 1D and the grid splits the long axis.
  const PlanResult deep = planner.plan({{i64{1} << 20, 2, 2}, 64});
  EXPECT_EQ(deep.regime, core::RegimeCase::kOneD);
  EXPECT_EQ(deep.grid, (core::Grid3{64, 1, 1}));
}

TEST(Planner, RandomizedCachedVsColdIdentity) {
  // The headline acceptance sweep: 10k random queries, each answered by a
  // cold planner and re-answered from cache, both pinned to the uncached
  // oracle.  Duplicate probability is high by construction (small P range)
  // so the cache path is genuinely exercised.
  GridPlanner planner;
  Rng rng{0xD1CE2026ULL};
  for (int i = 0; i < 10000; ++i) {
    const core::Shape shape{rng.range(1, 2048), rng.range(1, 2048),
                            rng.range(1, 2048)};
    const PlanRequest req{shape, rng.range(1, 512)};
    const PlanResult first = planner.plan(req);
    const PlanResult oracle = plan_uncached(req);
    ASSERT_TRUE(first == oracle)
        << "divergence at query " << i << ": shape " << shape.n1 << "x"
        << shape.n2 << "x" << shape.n3 << " P=" << req.P;
    ASSERT_TRUE(planner.plan(req) == first) << "cached replay diverged";
  }
  const PlannerStats stats = planner.stats();
  EXPECT_EQ(stats.point.hits + stats.point.misses, 20000u);
  EXPECT_GE(stats.point.hits, 10000u);  // every replay at minimum
}

TEST(Planner, BatchMatchesPointQueries) {
  GridPlanner planner;
  Rng rng{0xBA7C42ULL};
  std::vector<PlanRequest> reqs;
  for (int i = 0; i < 500; ++i) {
    reqs.push_back({{rng.range(1, 512), rng.range(1, 512), rng.range(1, 512)},
                    rng.range(1, 256)});
  }
  // Duplicates on purpose: the dedup path must scatter one solve to all.
  for (int i = 0; i < 100; ++i) {
    reqs.push_back(reqs[static_cast<std::size_t>(rng.next() % 500)]);
  }
  const std::vector<PlanResult> batched = planner.plan_batch(reqs, 4);
  ASSERT_EQ(batched.size(), reqs.size());
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    EXPECT_TRUE(batched[i] == plan_uncached(reqs[i])) << "index " << i;
  }
  const PlannerStats stats = planner.stats();
  EXPECT_EQ(stats.batch_queries, 600u);
  EXPECT_GE(stats.batch_deduped, 100u);
  // Single-threaded batch answers identically.
  EXPECT_TRUE(planner.plan_batch(reqs, 1) == batched);
  EXPECT_THROW(planner.plan_batch({{kPaperShape, 0}}), Error);
}

TEST(Planner, SweepMatchesCorePerPoint) {
  GridPlanner planner;
  std::vector<i64> counts;
  for (i64 P = 1; P <= 8192; P *= 2) counts.push_back(P);
  const SweepResult sweep = planner.plan_sweep(kPaperShape, counts);
  ASSERT_EQ(sweep.points.size(), counts.size());
  EXPECT_EQ(sweep.boundary_1d, 4.0);    // m/n = 9600/2400
  EXPECT_EQ(sweep.boundary_2d, 64.0);   // mn/k^2 = 9600*2400/600^2
  for (const SweepPoint& pt : sweep.points) {
    const core::BoundResult bound = core::memory_independent_bound(
        kPaperShape, static_cast<double>(pt.P));
    EXPECT_EQ(pt.regime, bound.regime) << "P = " << pt.P;
    EXPECT_EQ(pt.bound_words, bound.words) << "P = " << pt.P;
    EXPECT_EQ(pt.grid, core::best_integer_grid(kPaperShape, pt.P));
    EXPECT_EQ(pt.cost_words, core::alg1_cost_words(kPaperShape, pt.grid));
  }
  // Segments partition the sweep at the regime boundaries: P <= 4 is 1D,
  // 8..64 is 2D, 128+ is 3D (Figure 2's regimes).
  ASSERT_EQ(sweep.segments.size(), 3u);
  EXPECT_EQ(sweep.segments[0].regime, core::RegimeCase::kOneD);
  EXPECT_EQ(sweep.segments[0].p_lo, 1);
  EXPECT_EQ(sweep.segments[0].p_hi, 4);
  EXPECT_EQ(sweep.segments[1].regime, core::RegimeCase::kTwoD);
  EXPECT_EQ(sweep.segments[1].p_lo, 8);
  EXPECT_EQ(sweep.segments[1].p_hi, 64);
  EXPECT_EQ(sweep.segments[2].regime, core::RegimeCase::kThreeD);
  EXPECT_EQ(sweep.segments[2].p_lo, 128);
  EXPECT_EQ(sweep.segments[2].p_hi, 8192);

  // Bound-only sweeps skip the integer-grid channel but agree on bounds.
  const SweepResult fast =
      planner.plan_sweep(kPaperShape, counts, {.with_integer_grids = false});
  for (std::size_t i = 0; i < counts.size(); ++i) {
    EXPECT_EQ(fast.points[i].bound_words, sweep.points[i].bound_words);
    EXPECT_EQ(fast.points[i].grid, core::Grid3{});  // untouched default
  }
}

TEST(Planner, AtMostMatchesCoreSearch) {
  GridPlanner planner;
  const core::Shape shapes[] = {kPaperShape, {384, 96, 24}, {64, 64, 64},
                                {1, 1, 1}};
  for (const core::Shape& shape : shapes) {
    for (const i64 max_procs : {1, 2, 17, 96, 255, 600}) {
      EXPECT_EQ(planner.best_integer_grid_at_most(shape, max_procs),
                core::best_integer_grid_at_most(shape, max_procs))
          << "maxP = " << max_procs;
    }
  }
  // Cached replay (the elastic survivors' path) hits.
  const PlannerStats before = planner.stats();
  (void)planner.best_integer_grid_at_most(kPaperShape, 600);
  const PlannerStats after = planner.stats();
  EXPECT_EQ(after.atmost.hits, before.atmost.hits + 1);
  EXPECT_THROW(planner.best_integer_grid_at_most(kPaperShape, 0), Error);
}

TEST(Planner, ConcurrentMixedTrafficStaysDeterministic) {
  // 8 threads hammer one planner with overlapping point, batch, at-most,
  // and sweep traffic; every answer must equal the uncached oracle
  // regardless of interleaving (the double-fill race resolves to identical
  // bits).  Run under the tsan label, this is also the data-race probe.
  GridPlanner planner;
  std::vector<std::thread> team;
  std::atomic<int> failures{0};
  for (int t = 0; t < 8; ++t) {
    team.emplace_back([&planner, &failures, t] {
      Rng rng{0xC0FFEE00ULL + static_cast<std::uint64_t>(t)};
      for (int i = 0; i < 200; ++i) {
        const core::Shape shape{rng.range(1, 64), rng.range(1, 64),
                                rng.range(1, 64)};
        const i64 P = rng.range(1, 64);
        if (!(planner.plan({shape, P}) == plan_uncached({shape, P}))) {
          failures.fetch_add(1);
        }
        if (i % 50 == 0 &&
            planner.best_integer_grid_at_most(shape, P) !=
                core::best_integer_grid_at_most(shape, P)) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& th : team) th.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(Planner, EvictionOnlyCostsARecompute) {
  // A planner with a tiny point budget: far more distinct queries than
  // capacity forces evictions; answers must stay identical anyway.
  GridPlanner::Config config;
  config.point_capacity = 64;  // 1 entry per shard
  config.shape_capacity = 64;
  GridPlanner planner(config);
  Rng rng{0xE71C7ULL};
  for (int i = 0; i < 2000; ++i) {
    const PlanRequest req{{rng.range(1, 256), rng.range(1, 256),
                           rng.range(1, 256)},
                          rng.range(1, 128)};
    ASSERT_TRUE(planner.plan(req) == plan_uncached(req)) << "query " << i;
  }
}

TEST(Planner, ClearResetsStatsAndKeepsAnswers) {
  GridPlanner planner;
  const PlanRequest req{kPaperShape, 512};
  const PlanResult before = planner.plan(req);
  planner.clear();
  const PlannerStats stats = planner.stats();
  EXPECT_EQ(stats.point.hits, 0u);
  EXPECT_EQ(stats.point.misses, 0u);
  EXPECT_TRUE(planner.plan(req) == before);
}

TEST(Planner, SharedInstanceServesRegistryTraffic) {
  // The process-wide planner is what algorithm_registry and elastic
  // re-planning route through; its answers match the core calls too.
  const PlanRequest req{{384, 96, 24}, 16};
  expect_matches_core(req, GridPlanner::instance().plan(req));
}

TEST(Planner, RejectsInvalidQueries) {
  GridPlanner planner;
  EXPECT_THROW(planner.plan({kPaperShape, 0}), Error);
  EXPECT_THROW(planner.plan({kPaperShape, -4}), Error);
  EXPECT_THROW(planner.plan({{0, 1, 1}, 4}), Error);
  EXPECT_THROW(plan_uncached({kPaperShape, 0}), Error);
  EXPECT_THROW(planner.plan_sweep(kPaperShape, {4, 0}), Error);
}

}  // namespace
}  // namespace camb::planner
