// Checkpoint layer: snapshot wire codec, the buddy store, and crash-free
// checkpointed runs of every algorithm — which must stay bit-identical to
// their un-checkpointed twins and match the exact cost prediction
// (base algorithm + commit tax + agreement flood) word for word.
#include <gtest/gtest.h>

#include "collectives/rollback.hpp"
#include "machine/checkpoint.hpp"
#include "matmul/runner.hpp"

namespace camb {
namespace {

TEST(SnapshotWire, RoundTripsEpochAndBuffers) {
  Snapshot snap;
  snap.epoch = 7;
  snap.bufs = {{1.5, -2.0, 3.25}, {}, {42.0}};
  const std::vector<double> wire = snapshot_to_wire(snap);
  EXPECT_EQ(static_cast<i64>(wire.size()), snapshot_wire_words({3, 0, 1}));
  const Snapshot back = snapshot_from_wire(wire);
  EXPECT_EQ(back.epoch, 7);
  ASSERT_EQ(back.bufs.size(), 3u);
  EXPECT_EQ(back.bufs[0], snap.bufs[0]);
  EXPECT_EQ(back.bufs[1], snap.bufs[1]);
  EXPECT_EQ(back.bufs[2], snap.bufs[2]);
}

TEST(SnapshotWire, RejectsTruncatedAndTrailingWords) {
  Snapshot snap;
  snap.epoch = 1;
  snap.bufs = {{1.0, 2.0}};
  std::vector<double> wire = snapshot_to_wire(snap);
  std::vector<double> truncated(wire.begin(), wire.end() - 1);
  EXPECT_THROW(snapshot_from_wire(truncated), Error);
  wire.push_back(0.0);
  EXPECT_THROW(snapshot_from_wire(wire), Error);
}

TEST(CheckpointStore, TracksOwnAndWardEpochRanges) {
  CheckpointStore store;
  EXPECT_EQ(store.own_committed(), 0);
  EXPECT_EQ(store.own(1), nullptr);
  Snapshot s1;
  s1.epoch = 1;
  s1.bufs = {{1.0}};
  store.put_own(std::move(s1));
  Snapshot w1;
  w1.epoch = 1;
  w1.bufs = {{2.0}};
  store.put_ward(std::move(w1));
  Snapshot w2;
  w2.epoch = 2;
  w2.bufs = {{3.0}};
  store.put_ward(std::move(w2));
  EXPECT_EQ(store.own_committed(), 1);
  EXPECT_EQ(store.ward_lo(), 1);
  EXPECT_EQ(store.ward_hi(), 2);
  ASSERT_NE(store.own(1), nullptr);
  EXPECT_EQ(store.own(1)->bufs[0][0], 1.0);
  ASSERT_NE(store.ward(2), nullptr);
  EXPECT_EQ(store.ward(2)->bufs[0][0], 3.0);
  EXPECT_EQ(store.ward(3), nullptr);
  store.reset();
  EXPECT_EQ(store.own_committed(), 0);
  EXPECT_EQ(store.ward_lo(), 0);
  EXPECT_EQ(store.own(1), nullptr);
}

TEST(CheckpointBuddy, StrideRingIsInverse) {
  for (int P : {1, 2, 5, 9}) {
    for (int stride : {1, 2, 3, 7}) {
      for (int logical = 0; logical < P; ++logical) {
        const int buddy = ckpt_buddy(logical, P, stride);
        EXPECT_EQ(ckpt_ward(buddy, P, stride), logical);
      }
    }
  }
  EXPECT_EQ(ckpt_buddy(0, 4, 1), 1);
  EXPECT_EQ(ckpt_ward(0, 4, 1), 3);
}

TEST(CkptFlood, ViewAndRecvWordFormulas) {
  // T = 9: masks are 2 x ceil(9/32) = 2 words, payload 36 words.
  EXPECT_EQ(ckpt::ckpt_flood_view_words(9), 2 + 4 * 9);
  // One sub-round (no spares): T - 1 views received.
  EXPECT_EQ(ckpt::ckpt_flood_recv_words_exact(9, 0),
            8 * ckpt::ckpt_flood_view_words(9));
  // Two spares: three sub-rounds.
  EXPECT_EQ(ckpt::ckpt_flood_recv_words_exact(10, 2),
            3 * 9 * ckpt::ckpt_flood_view_words(10));
}

/// A clean checkpointed run must (a) verify bit-exactly, (b) produce the
/// same output bits as the plain algorithm, and (c) hit its exact word-count
/// prediction, including the checkpoint tax and the agreement flood.
void expect_clean_ckpt_exact(const mm::RunReport& plain,
                             const mm::RunReport& ckpt_report,
                             const char* what) {
  ASSERT_TRUE(ckpt_report.verified) << what;
  // Bit-identical outputs carry the plain run's (fp-roundoff) residual too.
  EXPECT_EQ(ckpt_report.max_abs_error, plain.max_abs_error) << what;
  EXPECT_EQ(ckpt_report.output_hash, plain.output_hash) << what;
  EXPECT_EQ(ckpt_report.measured_critical_recv,
            ckpt_report.predicted_words())
      << what << ": " << ckpt_report.resilience.summary();
  EXPECT_TRUE(ckpt_report.resilience.enabled) << what;
  EXPECT_EQ(ckpt_report.resilience.rounds, 1) << what;
  EXPECT_EQ(ckpt_report.resilience.final_epoch, 0) << what;
  EXPECT_TRUE(ckpt_report.resilience.failed.empty()) << what;
  EXPECT_EQ(ckpt_report.resilience.restream_recv_words, 0) << what;
  EXPECT_GT(ckpt_report.resilience.flood_recv_words, 0) << what;
}

mm::RunOptions ckpt_opts(i64 interval, int spares, int stride = 1) {
  mm::RunOptions opts;
  opts.verify = mm::VerifyMode::kReference;
  opts.checkpoint.interval = interval;
  opts.checkpoint.spares = spares;
  opts.checkpoint.buddy_stride = stride;
  return opts;
}

const mm::RunOptions kPlain = mm::RunOptions::verified(mm::VerifyMode::kReference);

TEST(CheckpointClean, SummaExactWithAndWithoutSpare) {
  const mm::SummaConfig cfg{{27, 15, 12}, 3};
  const mm::RunReport plain = mm::run_summa(cfg, kPlain);
  for (int spares : {0, 1}) {
    expect_clean_ckpt_exact(plain, mm::run_summa(cfg, ckpt_opts(1, spares)),
                            "summa");
  }
  // A sparser interval commits fewer epochs: smaller tax, still exact.
  const mm::RunReport sparse = mm::run_summa(cfg, ckpt_opts(2, 1));
  expect_clean_ckpt_exact(plain, sparse, "summa interval=2");
  const mm::RunReport dense = mm::run_summa(cfg, ckpt_opts(1, 1));
  EXPECT_LT(sparse.resilience.checkpoint_recv_words,
            dense.resilience.checkpoint_recv_words);
}

TEST(CheckpointClean, SummaBuddyStrideTwoExact) {
  const mm::SummaConfig cfg{{27, 15, 12}, 3};
  const mm::RunReport plain = mm::run_summa(cfg, kPlain);
  expect_clean_ckpt_exact(plain, mm::run_summa(cfg, ckpt_opts(1, 1, 2)),
                          "summa stride=2");
}

TEST(CheckpointClean, CannonExact) {
  const mm::CannonConfig cfg{{12, 9, 6}, 3};
  const mm::RunReport plain = mm::run_cannon(cfg, kPlain);
  expect_clean_ckpt_exact(plain, mm::run_cannon(cfg, ckpt_opts(1, 1)),
                          "cannon");
}

TEST(CheckpointClean, NaiveBcastExact) {
  const mm::NaiveBcastConfig cfg{{8, 6, 4}};
  const mm::RunReport plain = mm::run_naive_bcast(cfg, 4, kPlain);
  expect_clean_ckpt_exact(plain, mm::run_naive_bcast(cfg, 4, ckpt_opts(1, 1)),
                          "naive_bcast");
}

TEST(CheckpointClean, Grid3dExact) {
  const mm::Grid3dConfig cfg{{12, 10, 8}, core::Grid3{2, 2, 2}};
  const mm::RunReport plain = mm::run_grid3d(cfg, kPlain);
  expect_clean_ckpt_exact(plain, mm::run_grid3d(cfg, ckpt_opts(1, 1)),
                          "grid3d");
}

TEST(CheckpointClean, Grid3dAgarwalExact) {
  const mm::Grid3dAgarwalConfig cfg{{12, 10, 8}, core::Grid3{2, 2, 2}};
  const mm::RunReport plain = mm::run_grid3d_agarwal(cfg, kPlain);
  expect_clean_ckpt_exact(plain, mm::run_grid3d_agarwal(cfg, ckpt_opts(1, 1)),
                          "grid3d_agarwal");
}

TEST(CheckpointClean, Grid3dStagedExact) {
  mm::Grid3dStagedConfig cfg;
  cfg.shape = {12, 12, 8};
  cfg.grid = core::Grid3{2, 2, 2};
  cfg.stages = 3;
  const mm::RunReport plain = mm::run_grid3d_staged(cfg, kPlain);
  expect_clean_ckpt_exact(plain, mm::run_grid3d_staged(cfg, ckpt_opts(1, 1)),
                          "grid3d_staged");
}

TEST(CheckpointClean, CarmaExact) {
  const mm::CarmaConfig cfg{{16, 16, 16}, 3};
  const mm::RunReport plain = mm::run_carma(cfg, kPlain);
  expect_clean_ckpt_exact(plain, mm::run_carma(cfg, ckpt_opts(1, 1)),
                          "carma");
}

TEST(CheckpointClean, Alg25dExact) {
  mm::Alg25dConfig cfg;
  cfg.shape = {12, 12, 12};
  cfg.g = 2;
  cfg.c = 2;
  const mm::RunReport plain = mm::run_alg25d(cfg, kPlain);
  expect_clean_ckpt_exact(plain, mm::run_alg25d(cfg, ckpt_opts(1, 1)),
                          "alg25d");
}

TEST(CheckpointClean, SummaAbftExact) {
  const mm::SummaAbftConfig cfg{mm::SummaConfig{{27, 15, 12}, 3}};
  const mm::RunReport plain = mm::run_summa_abft(cfg, kPlain);
  expect_clean_ckpt_exact(plain, mm::run_summa_abft(cfg, ckpt_opts(1, 1)),
                          "summa_abft");
}

TEST(CheckpointClean, Grid3dAbftExact) {
  const mm::Grid3dAbftConfig cfg{
      mm::Grid3dConfig{{12, 10, 8}, core::Grid3{2, 2, 2}}};
  const mm::RunReport plain = mm::run_grid3d_abft(cfg, kPlain);
  expect_clean_ckpt_exact(plain, mm::run_grid3d_abft(cfg, ckpt_opts(1, 1)),
                          "grid3d_abft");
}

}  // namespace
}  // namespace camb
