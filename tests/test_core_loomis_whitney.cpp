// Unit tests for core/loomis_whitney.hpp: projections and the inequality.
#include "core/loomis_whitney.hpp"

#include <gtest/gtest.h>

#include "core/optimization.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace camb::core {
namespace {

TEST(Projections, SimpleSets) {
  // A single point projects to one element on each face.
  const auto p1 = projections({{0, 0, 0}});
  EXPECT_EQ(p1.onto_a, 1);
  EXPECT_EQ(p1.onto_b, 1);
  EXPECT_EQ(p1.onto_c, 1);
  EXPECT_EQ(p1.sum(), 3);
  EXPECT_EQ(p1.product(), 1);

  // A full 2x2x2 cube: each projection is a 2x2 face.
  std::vector<Point3> cube;
  for (i64 a = 0; a < 2; ++a)
    for (i64 b = 0; b < 2; ++b)
      for (i64 c = 0; c < 2; ++c) cube.push_back({a, b, c});
  const auto pc = projections(cube);
  EXPECT_EQ(pc.onto_a, 4);
  EXPECT_EQ(pc.onto_b, 4);
  EXPECT_EQ(pc.onto_c, 4);
}

TEST(Projections, DuplicatesIgnored) {
  const auto p = projections({{1, 2, 3}, {1, 2, 3}, {1, 2, 4}});
  EXPECT_EQ(p.onto_a, 1);  // (1,2) once
  EXPECT_EQ(p.onto_b, 2);  // (2,3), (2,4)
  EXPECT_EQ(p.onto_c, 2);  // (1,3), (1,4)
}

TEST(Projections, DiagonalIsWorstCase) {
  // The diagonal {(t,t,t)} has |F| = n and all projections of size n:
  // LW bound n^3 is maximally loose.
  std::vector<Point3> diag;
  for (i64 t = 0; t < 5; ++t) diag.push_back({t, t, t});
  const auto p = projections(diag);
  EXPECT_EQ(p.product(), 125);
  EXPECT_EQ(distinct_count(diag), 5);
  EXPECT_TRUE(loomis_whitney_holds(diag));
}

TEST(LoomisWhitney, HoldsOnRandomSets) {
  camb::Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<Point3> pts;
    const int count = 1 + static_cast<int>(rng.below(60));
    for (int i = 0; i < count; ++i) {
      pts.push_back({rng.range(0, 5), rng.range(0, 5), rng.range(0, 5)});
    }
    EXPECT_TRUE(loomis_whitney_holds(pts));
  }
}

TEST(LoomisWhitney, TightForBricks) {
  // For an a×b×c brick, |F| = abc and the projection product is exactly
  // (ab)(bc)(ac) = (abc)^2 >= abc, with equality of |F| and sqrt(product).
  std::vector<Point3> brick;
  for (i64 a = 0; a < 3; ++a)
    for (i64 b = 0; b < 4; ++b)
      for (i64 c = 0; c < 2; ++c) brick.push_back({a, b, c});
  const auto p = projections(brick);
  EXPECT_EQ(p.product(), (3 * 4) * (4 * 2) * (3 * 2));
  EXPECT_EQ(distinct_count(brick), 24);
  EXPECT_EQ(p.product(), 24 * 24);
}

TEST(FullIterationSpace, EnumeratesRowMajor) {
  const auto pts = full_iteration_space(Shape{2, 1, 2}, 10);
  ASSERT_EQ(pts.size(), 4u);
  EXPECT_EQ(pts[0], (Point3{0, 0, 0}));
  EXPECT_EQ(pts[1], (Point3{0, 0, 1}));
  EXPECT_EQ(pts[2], (Point3{1, 0, 0}));
  EXPECT_EQ(pts[3], (Point3{1, 0, 1}));
  EXPECT_THROW(full_iteration_space(Shape{100, 100, 100}, 1000), Error);
}

TEST(MinProjectionSum, ExactTinyCases) {
  // 2x2x2 cube, subsets of size 8 (the whole cube): projections 4+4+4 = 12.
  EXPECT_EQ(min_projection_sum_exact(Shape{2, 2, 2}, 8), 12);
  // Single point: 3.
  EXPECT_EQ(min_projection_sum_exact(Shape{2, 2, 2}, 1), 3);
  // Two points: best is two points sharing two coordinates: 1+2+2 = 5.
  EXPECT_EQ(min_projection_sum_exact(Shape{2, 2, 2}, 2), 5);
  // Four points: a 2x2x1 brick gives 4+2+2 = 8.
  EXPECT_EQ(min_projection_sum_exact(Shape{2, 2, 2}, 4), 8);
}

TEST(MinProjectionSum, ExactRespectsLemma2Optimum) {
  // The brute-force minimum over all subsets of size mnk/P must be at least
  // the Lemma 2 optimum (the continuous relaxation's value).
  for (const Shape& s : {Shape{2, 2, 2}, Shape{4, 2, 2}, Shape{3, 2, 3}}) {
    for (i64 P : {1, 2, 4}) {
      if (s.flops() % P != 0) continue;
      const i64 subset = s.flops() / P;
      const i64 brute = min_projection_sum_exact(s, subset);
      const SortedDims d = sort_dims(s);
      const auto sol = solve_analytic({static_cast<double>(d.m),
                                       static_cast<double>(d.n),
                                       static_cast<double>(d.k),
                                       static_cast<double>(P)});
      EXPECT_GE(static_cast<double>(brute) + 1e-9, sol.objective)
          << "shape=(" << s.n1 << "," << s.n2 << "," << s.n3 << ") P=" << P;
    }
  }
}

TEST(MinProjectionSum, SampledNeverBeatsLemma2) {
  camb::Rng rng(7);
  const Shape s{6, 5, 4};
  for (i64 P : {2, 4, 8}) {
    const i64 subset = s.flops() / P;
    const i64 sampled = min_projection_sum_sampled(s, subset, 300, 11 * P);
    const SortedDims d = sort_dims(s);
    const auto sol = solve_analytic({static_cast<double>(d.m),
                                     static_cast<double>(d.n),
                                     static_cast<double>(d.k),
                                     static_cast<double>(P)});
    EXPECT_GE(static_cast<double>(sampled) + 1e-9, sol.objective) << "P=" << P;
  }
}

}  // namespace
}  // namespace camb::core
