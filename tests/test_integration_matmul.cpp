// Integration tests: every algorithm executed end-to-end on the simulated
// machine across a sweep of shapes and grids, asserting simultaneously
//  (1) numerical correctness against the serial reference,
//  (2) exact agreement between executed and predicted communication,
//  (3) the Theorem 3 lower bound is respected,
//  (4) Algorithm 1 on the §5.2 grid attains the bound exactly.
#include <gtest/gtest.h>

#include <tuple>

#include "core/cost_eq3.hpp"
#include "matmul/runner.hpp"

namespace camb::mm {
namespace {

using camb::core::Shape;

// ---------------------------------------------------------------------------
// Algorithm 1 across every factor-triple grid of several machine sizes.
// ---------------------------------------------------------------------------

class Grid3dEveryGrid : public ::testing::TestWithParam<std::tuple<int, int>> {
};

TEST_P(Grid3dEveryGrid, CorrectCountedAndBounded) {
  const auto [p_index, shape_index] = GetParam();
  const i64 machine_sizes[] = {2, 4, 6, 8, 12};
  const Shape shapes[] = {Shape{16, 12, 8}, Shape{13, 9, 5}, Shape{6, 24, 6}};
  const i64 P = machine_sizes[p_index];
  const Shape shape = shapes[shape_index];
  for (const Grid3& grid : camb::core::all_grids(P)) {
    Grid3dConfig cfg{shape, grid};
    const RunReport report = run_grid3d(cfg, true);
    EXPECT_LE(report.max_abs_error, 1e-10)
        << "grid=" << grid.p1 << "x" << grid.p2 << "x" << grid.p3;
    EXPECT_EQ(report.measured_critical_recv, report.predicted_words())
        << "grid=" << grid.p1 << "x" << grid.p2 << "x" << grid.p3;
    EXPECT_GE(static_cast<double>(report.measured_critical_recv) + 1e-6,
              report.lower_bound_words);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, Grid3dEveryGrid,
                         ::testing::Combine(::testing::Range(0, 5),
                                            ::testing::Range(0, 3)));

// ---------------------------------------------------------------------------
// Executed tightness: the paper's central claim, on the machine.
// ---------------------------------------------------------------------------

struct TightRun {
  Shape shape;
  Grid3 grid;
};

class ExecutedTightness : public ::testing::TestWithParam<TightRun> {};

TEST_P(ExecutedTightness, MeasuredCommEqualsTheorem3) {
  const auto& tr = GetParam();
  ASSERT_TRUE(camb::core::grid_divides(tr.shape, tr.grid));
  Grid3dConfig cfg{tr.shape, tr.grid};
  const RunReport report = run_grid3d(cfg, true);
  EXPECT_LE(report.max_abs_error, 1e-10);
  // Equality, not just >=: the executed words match the bound exactly (up to
  // the fp rounding of pow() in the bound's 2/3-power evaluation).
  EXPECT_NEAR(static_cast<double>(report.measured_critical_recv),
              report.lower_bound_words, 1e-9 * report.lower_bound_words);
  // And they equal the closed-form eq. 3 evaluation.
  EXPECT_EQ(report.measured_critical_recv,
            camb::core::alg1_cost_words_exact(tr.shape, tr.grid));
}

// Scaled-down paper shape (384, 96, 24): aspect ratios 16:4:1 as in Figure 2,
// m/n = 4, mn/k^2 = 64.  Optimal grids per §5.2.
INSTANTIATE_TEST_SUITE_P(
    ScaledPaperShape, ExecutedTightness,
    ::testing::Values(TightRun{Shape{384, 96, 24}, Grid3{2, 1, 1}},   // P=2, 1D
                      TightRun{Shape{384, 96, 24}, Grid3{4, 1, 1}},   // P=4, 1D/2D boundary
                      TightRun{Shape{384, 96, 24}, Grid3{8, 2, 1}},   // P=16, 2D
                      TightRun{Shape{1536, 384, 96}, Grid3{32, 8, 2}},  // P=512, 3D
                      TightRun{Shape{384, 96, 24}, Grid3{16, 4, 1}},  // P=64, 2D/3D boundary
                      TightRun{Shape{96, 96, 96}, Grid3{2, 2, 2}},    // square 3D
                      TightRun{Shape{96, 96, 96}, Grid3{4, 4, 4}},    // square 3D
                      TightRun{Shape{24, 96, 384}, Grid3{1, 1, 4}},   // permuted 1D
                      TightRun{Shape{96, 24, 384}, Grid3{2, 1, 8}}));  // permuted 2D

// ---------------------------------------------------------------------------
// Cross-algorithm comparison on a common problem.
// ---------------------------------------------------------------------------

TEST(CrossAlgorithm, AllProduceTheSameResult) {
  const Shape shape{24, 24, 24};
  const auto g3 = run_grid3d(Grid3dConfig{shape, Grid3{2, 2, 1}}, true);
  const auto su = run_summa(SummaConfig{shape, 2}, true);
  const auto ca = run_cannon(CannonConfig{shape, 2}, true);
  const auto nb = run_naive_bcast(NaiveBcastConfig{shape}, 4, true);
  for (const auto* report : {&g3, &su, &ca, &nb}) {
    EXPECT_LE(report->max_abs_error, 1e-10);
  }
}

TEST(CrossAlgorithm, OptimalNeverLosesOnItsOwnTurf) {
  // On each regime's representative problem, Algorithm 1 with the best
  // integer grid communicates no more than any baseline at equal P.
  struct Case {
    Shape shape;
    i64 P;
    i64 g2d;  // 2D grid edge for the baselines (g2d^2 == P)
  };
  for (const auto& c : {Case{Shape{64, 16, 16}, 4, 2},
                        Case{Shape{32, 32, 32}, 16, 4},
                        Case{Shape{36, 24, 12}, 9, 3}}) {
    const Grid3 grid = camb::core::best_integer_grid(c.shape, c.P);
    const auto optimal = run_grid3d(Grid3dConfig{c.shape, grid}, false);
    const auto summa = run_summa(SummaConfig{c.shape, c.g2d}, false);
    const auto cannon = run_cannon(CannonConfig{c.shape, c.g2d}, false);
    EXPECT_LE(optimal.measured_critical_recv, summa.measured_critical_recv)
        << "shape=(" << c.shape.n1 << "," << c.shape.n2 << "," << c.shape.n3
        << ")";
    EXPECT_LE(optimal.measured_critical_recv, cannon.measured_critical_recv);
  }
}

TEST(CrossAlgorithm, TotalVolumeConservation) {
  // Sum over ranks of sent words equals sum of received words (no word is
  // created or destroyed by the network).
  const Shape shape{18, 12, 8};
  const Grid3 grid{3, 2, 2};
  camb::Machine machine(static_cast<int>(grid.total()));
  Grid3dConfig cfg{shape, grid};
  machine.run([&](camb::RankCtx& ctx) { (void)grid3d_rank(ctx, cfg); });
  i64 sent = 0, received = 0;
  for (int r = 0; r < machine.nprocs(); ++r) {
    sent += machine.stats().rank_total(r).words_sent();
    received += machine.stats().rank_total(r).words_received();
  }
  EXPECT_EQ(sent, received);
}

// ---------------------------------------------------------------------------
// Medium-scale executed run (P = 64) — the 3D regime exercised for real.
// ---------------------------------------------------------------------------

TEST(MediumScale, SixtyFourRanksCubicGrid) {
  const Shape shape{64, 64, 64};
  const Grid3 grid{4, 4, 4};
  Grid3dConfig cfg{shape, grid};
  const RunReport report = run_grid3d(cfg, true);
  EXPECT_LE(report.max_abs_error, 1e-10);
  EXPECT_EQ(report.measured_critical_recv, report.predicted_words());
  // Square shape, P = 64 cubic grid: exact optimum.
  EXPECT_NEAR(static_cast<double>(report.measured_critical_recv),
              report.lower_bound_words, 1e-9 * report.lower_bound_words);
}

}  // namespace
}  // namespace camb::mm
