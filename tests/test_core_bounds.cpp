// Unit tests for core/bounds.hpp: Theorem 3, Corollary 4, and the §6.2
// memory-dependent comparison.
#include "core/bounds.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace camb::core {
namespace {

TEST(Theorem3, Case1Expression) {
  // D = (mn + mk)/P + nk; bound = D - (mn + mk + nk)/P = (1 - 1/P) nk.
  const auto r = memory_independent_bound_sorted(9600, 2400, 600, 3);
  EXPECT_EQ(r.regime, RegimeCase::kOneD);
  EXPECT_DOUBLE_EQ(r.leading_term, 2400.0 * 600);
  EXPECT_DOUBLE_EQ(r.constant, 1.0);
  EXPECT_DOUBLE_EQ(r.words, (1.0 - 1.0 / 3.0) * 2400 * 600);
}

TEST(Theorem3, Case2Expression) {
  const double m = 9600, n = 2400, k = 600, P = 36;
  const auto r = memory_independent_bound_sorted(m, n, k, P);
  EXPECT_EQ(r.regime, RegimeCase::kTwoD);
  const double lead = std::sqrt(m * n * k * k / P);
  EXPECT_NEAR(r.leading_term, lead, 1e-6);
  EXPECT_DOUBLE_EQ(r.constant, 2.0);
  EXPECT_NEAR(r.D, 2 * lead + m * n / P, 1e-6);
  EXPECT_NEAR(r.words, 2 * lead - (m * k + n * k) / P, 1e-6);
}

TEST(Theorem3, Case3Expression) {
  const double m = 9600, n = 2400, k = 600, P = 512;
  const auto r = memory_independent_bound_sorted(m, n, k, P);
  EXPECT_EQ(r.regime, RegimeCase::kThreeD);
  const double lead = std::pow(m * n * k / P, 2.0 / 3.0);
  EXPECT_NEAR(r.D, 3 * lead, 1e-6);
  EXPECT_DOUBLE_EQ(r.constant, 3.0);
}

TEST(Theorem3, DEqualsLemma2Objective) {
  // By construction of the proof, D is exactly the Lemma 2 optimum.
  for (double P : {1.0, 2.0, 4.0, 10.0, 36.0, 64.0, 512.0, 1e5}) {
    const auto r = memory_independent_bound_sorted(9600, 2400, 600, P);
    EXPECT_NEAR(r.D, lemma2_objective(9600, 2400, 600, P), 1e-9 * r.D)
        << "P=" << P;
  }
}

TEST(Theorem3, SortsRawShapes) {
  // The bound must be invariant under permutations of (n1, n2, n3).
  const auto a = memory_independent_bound(Shape{9600, 2400, 600}, 36);
  const auto b = memory_independent_bound(Shape{600, 2400, 9600}, 36);
  const auto c = memory_independent_bound(Shape{2400, 9600, 600}, 36);
  EXPECT_DOUBLE_EQ(a.words, b.words);
  EXPECT_DOUBLE_EQ(a.words, c.words);
}

TEST(Theorem3, PEqualsOneIsZero) {
  // One processor communicates nothing: D = mn + mk + nk = owned.
  const auto r = memory_independent_bound_sorted(100, 50, 20, 1);
  EXPECT_DOUBLE_EQ(r.words, 0.0);
}

TEST(Theorem3, MonotoneNonincreasingInP) {
  // Per-processor data requirement D decreases (weakly) with P.
  double prev = std::numeric_limits<double>::infinity();
  for (double P = 1; P <= 4096; P *= 2) {
    const auto r = memory_independent_bound_sorted(4000, 1000, 250, P);
    EXPECT_LE(r.D, prev * (1 + 1e-12)) << "P=" << P;
    prev = r.D;
  }
}

TEST(Corollary4, SquareCase) {
  // 3 n^2 / P^{2/3} - 3 n^2 / P, and it matches Theorem 3 with m = n = k.
  const double n = 300, P = 27;
  EXPECT_NEAR(square_bound(n, P), 3 * n * n / 9.0 - 3 * n * n / 27.0, 1e-9);
  const auto r = memory_independent_bound_sorted(n, n, n, P);
  EXPECT_NEAR(square_bound(n, P), r.words, 1e-6);
}

TEST(Corollary4, OneProcessorIsZero) {
  EXPECT_DOUBLE_EQ(square_bound(500, 1), 0.0);
}

TEST(MemoryDependent, LeadingTerm) {
  EXPECT_DOUBLE_EQ(memory_dependent_leading(100, 100, 100, 4, 2500),
                   2.0 * 1e6 / (4 * 50));
  EXPECT_THROW(memory_dependent_leading(10, 10, 10, 1, 0), Error);
}

TEST(TightestBound, CrossoverBehaviour) {
  // §6.2: for P slightly above mn/k^2 with tiny memory, the memory-dependent
  // bound dominates; with plentiful memory it never does.
  const double m = 4096, n = 4096, k = 4096;
  const double small_M = 1000;
  const double big_M = 1e9;
  const double P = 4096;
  EXPECT_TRUE(tightest_bound(m, n, k, P, small_M).mem_dependent_dominates);
  EXPECT_FALSE(tightest_bound(m, n, k, P, big_M).mem_dependent_dominates);
}

TEST(TightestBound, ThresholdFormula) {
  const double m = 4096, n = 4096, k = 4096, M = 65536;
  const double thresh = memory_dependent_dominance_threshold(m, n, k, M);
  EXPECT_NEAR(thresh, (8.0 / 27.0) * m * n * k / std::pow(M, 1.5), 1e-3);
  // Just above mn/k^2 and below the threshold: memory-dependent dominates.
  const double P_mid = std::min(thresh * 0.5, 1e7);
  if (P_mid > m * n / (k * k) + 1) {
    EXPECT_TRUE(tightest_bound(m, n, k, P_mid, M).mem_dependent_dominates);
  }
  // Beyond the threshold the memory-independent bound takes over again.
  EXPECT_FALSE(
      tightest_bound(m, n, k, thresh * 2, M).mem_dependent_dominates);
}

TEST(MemoryIndependent, DominatesLeadingTermsInCases1And2) {
  // §6.2's chain of dominations: because the local memory must hold the
  // largest matrix, M > mn/P, the memory-dependent leading term
  // 2mnk/(P sqrt(M)) is below the case-2 leading term 2(mnk^2/P)^{1/2};
  // and for P <= m/n the case-1 expression dominates the case-2 one
  // (by AM-GM: 2(mnk^2/P)^{1/2} <= mk/P + nk).
  const double m = 9600, n = 2400, k = 600;
  for (double P : {2.0, 4.0, 16.0, 36.0, 64.0}) {
    const double case2_term = 2.0 * std::sqrt(m * n * k * k / P);
    const double M_min = m * n / P;
    for (double M : {M_min * 1.01, M_min * 4, M_min * 100}) {
      EXPECT_LT(memory_dependent_leading(m, n, k, P, M), case2_term)
          << "P=" << P << " M=" << M;
    }
    if (P <= m / n) {
      EXPECT_LE(case2_term, m * k / P + n * k + 1e-9) << "P=" << P;
    }
  }
}

TEST(SufficientMemory, ThresholdFormula) {
  EXPECT_NEAR(sufficient_memory_threshold(100, 100, 100, 8),
              (4.0 / 9.0) * std::pow(1e6 / 8, 2.0 / 3.0), 1e-6);
}

TEST(Theorem3, WordsClampedAtZero) {
  // Degenerate: huge owned data relative to D can not go negative.
  const auto r = memory_independent_bound_sorted(10, 10, 10, 1);
  EXPECT_GE(r.words, 0.0);
}

}  // namespace
}  // namespace camb::core
