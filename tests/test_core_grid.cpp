// Unit tests for core/grid.hpp: §5.2 optimal grid selection.
#include "core/grid.hpp"

#include <gtest/gtest.h>

#include "core/cost_eq3.hpp"
#include "util/error.hpp"

namespace camb::core {
namespace {

const Shape kPaperShape{9600, 2400, 600};  // Figure 2's running example

TEST(RealGrid, Case1Is1D) {
  const auto g = optimal_grid_real(9600, 2400, 600, 3);
  EXPECT_EQ(g.regime, RegimeCase::kOneD);
  EXPECT_DOUBLE_EQ(g.p, 3);
  EXPECT_DOUBLE_EQ(g.q, 1);
  EXPECT_DOUBLE_EQ(g.r, 1);
}

TEST(RealGrid, Case2Is2DWithMatchedAspect) {
  const auto g = optimal_grid_real(9600, 2400, 600, 36);
  EXPECT_EQ(g.regime, RegimeCase::kTwoD);
  EXPECT_NEAR(g.p, 12, 1e-9);
  EXPECT_NEAR(g.q, 3, 1e-9);
  EXPECT_DOUBLE_EQ(g.r, 1);
  // m/p == n/q.
  EXPECT_NEAR(9600 / g.p, 2400 / g.q, 1e-9);
}

TEST(RealGrid, Case3Is3DCubic) {
  const auto g = optimal_grid_real(9600, 2400, 600, 512);
  EXPECT_EQ(g.regime, RegimeCase::kThreeD);
  EXPECT_NEAR(g.p, 32, 1e-9);
  EXPECT_NEAR(g.q, 8, 1e-9);
  EXPECT_NEAR(g.r, 2, 1e-9);
  // Cubic local volumes: m/p == n/q == k/r.
  EXPECT_NEAR(9600 / g.p, 600 / g.r, 1e-9);
}

TEST(RealGrid, ProductIsAlwaysP) {
  for (double P : {1.0, 2.0, 7.0, 36.0, 100.0, 512.0, 9999.0}) {
    const auto g = optimal_grid_real(9600, 2400, 600, P);
    EXPECT_NEAR(g.p * g.q * g.r, P, 1e-6 * P);
  }
}

TEST(ExactGrid, PaperFigure2Grids) {
  // Figure 2: P = 3 -> 3x1x1, P = 36 -> 12x3x1, P = 512 -> 32x8x2, where the
  // grid axes align with (n1, n2, n3) = (m, n, k) for this shape.
  EXPECT_EQ(exact_optimal_grid(kPaperShape, 3), (Grid3{3, 1, 1}));
  EXPECT_EQ(exact_optimal_grid(kPaperShape, 36), (Grid3{12, 3, 1}));
  EXPECT_EQ(exact_optimal_grid(kPaperShape, 512), (Grid3{32, 8, 2}));
}

TEST(ExactGrid, AxisMappingFollowsShapeOrientation) {
  // Same dimensions, permuted: B-heavy orientation. m = 9600 now sits on
  // axis 3, so the P-way 1D grid must split axis 3.
  const Shape permuted{600, 2400, 9600};
  EXPECT_EQ(exact_optimal_grid(permuted, 3), (Grid3{1, 1, 3}));
  EXPECT_EQ(exact_optimal_grid(permuted, 512), (Grid3{2, 8, 32}));
}

TEST(ExactGrid, ThrowsWhenFractional) {
  // P = 7 in the 2D regime of the paper shape: p = sqrt(7*4) not integral.
  EXPECT_THROW(exact_optimal_grid(kPaperShape, 7), Error);
}

TEST(BestIntegerGrid, MatchesExactWhenItExists) {
  for (i64 P : {3, 36, 512}) {
    EXPECT_EQ(best_integer_grid(kPaperShape, P), exact_optimal_grid(kPaperShape, P))
        << "P=" << P;
  }
}

TEST(BestIntegerGrid, AlwaysProducesAGridOfSizeP) {
  for (i64 P : {1, 2, 5, 7, 11, 24, 60, 97, 100}) {
    const Grid3 g = best_integer_grid(kPaperShape, P);
    EXPECT_EQ(g.total(), P);
  }
}

TEST(BestIntegerGrid, NeverWorseThanAnyOtherFactorTriple) {
  for (i64 P : {12, 30, 64}) {
    const Grid3 best = best_integer_grid(kPaperShape, P);
    const double best_cost = alg1_cost_words(kPaperShape, best);
    for (const Grid3& g : all_grids(P)) {
      EXPECT_LE(best_cost, alg1_cost_words(kPaperShape, g) + 1e-9)
          << "P=" << P << " grid=" << g.p1 << "x" << g.p2 << "x" << g.p3;
    }
  }
}

TEST(ToRawGrid, RoundTripsThroughSorting) {
  const Shape s{10, 30, 20};  // m on axis 2, n on axis 3, k on axis 1
  const Grid3 g = to_raw_grid(s, 6, 3, 2);
  EXPECT_EQ(g.p2, 6);  // p follows m (axis 2 is n2)
  EXPECT_EQ(g.p3, 3);  // q follows n
  EXPECT_EQ(g.p1, 2);  // r follows k
}

TEST(GridDivides, Checks) {
  EXPECT_TRUE(grid_divides(kPaperShape, Grid3{32, 8, 2}));
  EXPECT_TRUE(grid_divides(kPaperShape, Grid3{12, 3, 1}));
  EXPECT_FALSE(grid_divides(kPaperShape, Grid3{7, 1, 1}));
}

TEST(AllGrids, EnumeratesFactorTriples) {
  const auto grids = all_grids(12);
  bool found = false;
  for (const auto& g : grids) {
    EXPECT_EQ(g.total(), 12);
    if (g == Grid3{2, 3, 2}) found = true;
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace camb::core
