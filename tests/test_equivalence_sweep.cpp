// Golden equivalence sweep: every registry algorithm, at P in
// {8, 16, 27, 36, 64} and 8 master seeds, must reproduce the exact
// communication profile and output bits recorded in
// tests/golden/equivalence_sweep.txt.
//
// The golden file was generated from the pre-communicator (group +
// tag_base) codebase, so this sweep is the proof that the `coll::Comm`
// cutover changed no algorithm's behavior: per-rank sent/received words,
// per-rank message counts, the scheduled critical-path time, and the
// assembled output's bit pattern are all pinned, run by run.
//
// The sweep runs under BOTH rank schedulers (thread-per-rank and fibers)
// against the same golden records: the fiber cutover must be invisible in
// every pinned bit, which is the simulator's determinism contract
// (machine/fiber.hpp) made checkable.
//
// Since the scalar-substrate refactor the sweep also pins dtype legs: f32
// and i64 records for SUMMA and Algorithm 1 (keys "<algo>~<dtype>"), run
// under both schedulers like everything else.  Per-rank word counts are
// doubles now (exact halves for f32), so the counts hash folds their exact
// bit patterns; f64 output/time hashes are unchanged from the pre-dtype
// harness because the f64 data path is bit-identical.
//
// Regenerate (only when an *intentional* behavior change lands) with:
//   CAMB_WRITE_GOLDEN=1 ./test_equivalence_sweep
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "matmul/algorithm_registry.hpp"
#include "matmul/runner.hpp"

namespace camb::mm {
namespace {

const Shape kShape{48, 40, 56};
const std::vector<i64> kProcs = {8, 16, 27, 36, 64};
const std::vector<std::uint64_t> kMasterSeeds = {101, 102, 103, 104,
                                                 105, 106, 107, 108};

/// The dtype legs: every (algo, dtype) pair here gets its own golden records
/// at every supported P and seed, under both schedulers.
const std::vector<DType> kDtypes = {DType::kF32, DType::kI64};
const std::vector<std::string> kDtypeAlgos = {"grid3d_optimal", "summa"};

/// Verification tolerance per dtype: i64 is exact, f32 carries
/// single-precision rounding against the serially-summed reference.
double verify_tol(DType d) { return d == DType::kF32 ? 1e-3 : 1e-9; }

std::string golden_path() {
  return std::string(CAMB_GOLDEN_DIR) + "/equivalence_sweep.txt";
}

/// FNV-1a over a stream of 64-bit values: folds the per-rank count vectors
/// into one fingerprint per run (the raw vectors are printed on mismatch).
struct Fnv {
  std::uint64_t h = 1469598103934665603ull;
  void add(std::uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (8 * b)) & 0xff;
      h *= 1099511628211ull;
    }
  }
  void add_all(const std::vector<i64>& xs) {
    add(static_cast<std::uint64_t>(xs.size()));
    for (i64 x : xs) add(static_cast<std::uint64_t>(x));
  }
  /// Word vectors are doubles (exact halves possible): fold the exact bit
  /// pattern of every entry, so any change — even by half a word — shows.
  void add_all(const std::vector<double>& xs) {
    add(static_cast<std::uint64_t>(xs.size()));
    for (double x : xs) {
      std::uint64_t bits;
      static_assert(sizeof(bits) == sizeof(x));
      std::memcpy(&bits, &x, sizeof(bits));
      add(bits);
    }
  }
};

/// One golden record: everything the sweep pins for a (algo, P, seed) run.
struct Record {
  std::uint64_t counts_hash = 0;  ///< per-rank recv/sent/message vectors
  std::uint64_t time_bits = 0;    ///< simulated_time, exact bit pattern
  std::uint64_t output_hash = 0;  ///< assembled C, exact bit pattern
};

bool operator==(const Record& a, const Record& b) {
  return a.counts_hash == b.counts_hash && a.time_bits == b.time_bits &&
         a.output_hash == b.output_hash;
}

std::string key_of(const std::string& algo, i64 p, std::uint64_t seed,
                   DType dtype = DType::kF64) {
  std::ostringstream out;
  out << algo;
  if (dtype != DType::kF64) out << "~" << dtype_name(dtype);
  out << " P=" << p << " seed=" << seed;
  return out.str();
}

Record record_of(const RunReport& report) {
  Record rec;
  Fnv fnv;
  fnv.add_all(report.rank_recv_words);
  fnv.add_all(report.rank_sent_words);
  fnv.add_all(report.rank_messages);
  rec.counts_hash = fnv.h;
  static_assert(sizeof(rec.time_bits) == sizeof(report.simulated_time));
  std::memcpy(&rec.time_bits, &report.simulated_time, sizeof(rec.time_bits));
  rec.output_hash = report.output_hash;
  return rec;
}

RunReport run_one(const AlgorithmInfo& algo, i64 p, std::uint64_t seed,
                  SchedulerKind scheduler, DType dtype = DType::kF64) {
  RunOptions opts = RunOptions::verified(VerifyMode::kReference);
  opts.perturb.master_seed = seed;
  // Explicit kind (never kDefault): the sweep must pin both substrates
  // regardless of any $CAMB_SCHEDULER ambient override.
  opts.scheduler.kind = scheduler;
  opts.dtype = dtype;
  return algo.run_opts(kShape, p, opts);
}

std::map<std::string, Record> load_golden() {
  std::map<std::string, Record> golden;
  std::ifstream in(golden_path());
  if (!in) return golden;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    // Format: <algo> P=<p> seed=<s> | counts=<hex> time=<hex> out=<hex>
    const auto bar = line.find(" | ");
    Record rec;
    char counts[17], time[17], out[17];
    if (bar == std::string::npos ||
        std::sscanf(line.c_str() + bar + 3, "counts=%16s time=%16s out=%16s",
                    counts, time, out) != 3) {
      ADD_FAILURE() << "bad golden line: " << line;
      continue;
    }
    rec.counts_hash = std::stoull(counts, nullptr, 16);
    rec.time_bits = std::stoull(time, nullptr, 16);
    rec.output_hash = std::stoull(out, nullptr, 16);
    golden[line.substr(0, bar)] = rec;
  }
  return golden;
}

void write_golden(const std::map<std::string, Record>& records) {
  std::ofstream out(golden_path());
  ASSERT_TRUE(out) << "cannot write " << golden_path();
  out << "# Golden equivalence records: shape 48x40x56, reference-verified.\n"
      << "# One line per (algorithm, P, master seed); hashes are FNV-1a.\n";
  for (const auto& [key, rec] : records) {
    char buf[128];
    std::snprintf(buf, sizeof(buf), "%s | counts=%016llx time=%016llx out=%016llx",
                  key.c_str(), static_cast<unsigned long long>(rec.counts_hash),
                  static_cast<unsigned long long>(rec.time_bits),
                  static_cast<unsigned long long>(rec.output_hash));
    out << buf << "\n";
  }
}

bool write_mode() { return std::getenv("CAMB_WRITE_GOLDEN") != nullptr; }

/// The sweep itself, parameterized over (P, scheduler) so failures localize
/// and the runs parallelize under ctest.  Both scheduler legs assert
/// against the SAME golden records — bit-identity across substrates is the
/// whole point.
class EquivalenceSweep
    : public ::testing::TestWithParam<std::tuple<i64, SchedulerKind>> {};

TEST_P(EquivalenceSweep, MatchesGolden) {
  const i64 p = std::get<0>(GetParam());
  const SchedulerKind scheduler = std::get<1>(GetParam());
  const auto golden = load_golden();
  if (!write_mode()) {
    ASSERT_FALSE(golden.empty())
        << "missing golden file " << golden_path()
        << " — regenerate with CAMB_WRITE_GOLDEN=1";
  }
  std::map<std::string, Record> fresh;
  for (const auto& algo : algorithm_registry()) {
    if (!algo.supports(kShape, p)) continue;
    for (std::uint64_t seed : kMasterSeeds) {
      const RunReport report = run_one(algo, p, seed, scheduler);
      ASSERT_TRUE(report.verified);
      // Bit-exactness is asserted against the golden output hash below;
      // against the serial reference only closeness holds (summation order).
      ASSERT_LT(report.max_abs_error, 1e-9)
          << algo.name << " P=" << p << " seed=" << seed;
      fresh[key_of(algo.name, p, seed)] = record_of(report);
    }
  }
  for (const std::string& name : kDtypeAlgos) {
    const AlgorithmInfo& algo = algorithm_by_name(name);
    if (!algo.supports(kShape, p)) continue;
    for (DType dtype : kDtypes) {
      for (std::uint64_t seed : kMasterSeeds) {
        const RunReport report = run_one(algo, p, seed, scheduler, dtype);
        ASSERT_TRUE(report.verified);
        ASSERT_LT(report.max_abs_error, verify_tol(dtype))
            << name << "~" << dtype_name(dtype) << " P=" << p
            << " seed=" << seed;
        fresh[key_of(name, p, seed, dtype)] = record_of(report);
      }
    }
  }
  if (write_mode()) return;  // collected by the writer test below
  for (const auto& [key, rec] : fresh) {
    const auto it = golden.find(key);
    ASSERT_NE(it, golden.end()) << "no golden record for " << key;
    EXPECT_TRUE(rec == it->second)
        << key << " diverged from golden:\n  counts " << std::hex
        << rec.counts_hash << " vs " << it->second.counts_hash << "\n  time "
        << rec.time_bits << " vs " << it->second.time_bits << "\n  output "
        << rec.output_hash << " vs " << it->second.output_hash;
  }
  // Nothing in the golden file for this P may have silently disappeared
  // (e.g. an algorithm dropping support for a grid it used to run on).
  const std::string p_tag = " P=" + std::to_string(p) + " ";
  for (const auto& [key, rec] : golden) {
    if (key.find(p_tag) == std::string::npos) continue;
    EXPECT_TRUE(fresh.count(key)) << "golden record no longer produced: " << key;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllGrids, EquivalenceSweep,
    ::testing::Combine(::testing::ValuesIn(kProcs),
                       ::testing::Values(SchedulerKind::kThreads,
                                         SchedulerKind::kFibers)),
    [](const ::testing::TestParamInfo<std::tuple<i64, SchedulerKind>>& info) {
      return "P" + std::to_string(std::get<0>(info.param)) + "_" +
             scheduler_kind_name(std::get<1>(info.param));
    });

/// Regeneration entry point: under CAMB_WRITE_GOLDEN, re-runs the whole
/// sweep and rewrites the golden file in one pass.
TEST(EquivalenceSweepGolden, WriteIfRequested) {
  if (!write_mode()) {
    GTEST_SKIP() << "set CAMB_WRITE_GOLDEN=1 to regenerate "
                 << golden_path();
  }
  std::map<std::string, Record> records;
  for (const auto& algo : algorithm_registry()) {
    for (i64 p : kProcs) {
      if (!algo.supports(kShape, p)) continue;
      for (std::uint64_t seed : kMasterSeeds) {
        // Golden records are always written from the thread-per-rank
        // substrate; the fiber leg must reproduce them, never define them.
        const RunReport report = run_one(algo, p, seed, SchedulerKind::kThreads);
        ASSERT_TRUE(report.verified);
        records[key_of(algo.name, p, seed)] = record_of(report);
      }
    }
  }
  for (const std::string& name : kDtypeAlgos) {
    const AlgorithmInfo& algo = algorithm_by_name(name);
    for (i64 p : kProcs) {
      if (!algo.supports(kShape, p)) continue;
      for (DType dtype : kDtypes) {
        for (std::uint64_t seed : kMasterSeeds) {
          const RunReport report =
              run_one(algo, p, seed, SchedulerKind::kThreads, dtype);
          ASSERT_TRUE(report.verified);
          records[key_of(name, p, seed, dtype)] = record_of(report);
        }
      }
    }
  }
  write_golden(records);
}

}  // namespace
}  // namespace camb::mm
