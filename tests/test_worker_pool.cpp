// WorkerPool unit tests, centered on the reentrancy contract the fiber
// scheduler leans on: a nested or concurrent run cannot borrow the pool
// (the outer run holds it) and must degrade to plain std::threads — never
// deadlock, never drop a task.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "machine/worker_pool.hpp"

namespace camb {
namespace {

TEST(WorkerPool, RunsEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(32);
  std::atomic<int> pooled{0};
  WorkerPool::instance().run(32, [&](int i) {
    hits[static_cast<std::size_t>(i)].fetch_add(1);
    if (WorkerPool::on_pool_worker()) pooled.fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  // An uncontended top-level run uses pool workers, not the fallback.
  EXPECT_EQ(pooled.load(), 32);
  EXPECT_FALSE(WorkerPool::on_pool_worker()) << "main thread mislabeled";
}

TEST(WorkerPool, ZeroTasksIsANoop) {
  bool ran = false;
  WorkerPool::instance().run(0, [&](int) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(WorkerPool, NestedRunFallsBackToPlainThreads) {
  std::atomic<int> outer_done{0};
  std::atomic<int> inner_done{0};
  std::atomic<int> inner_on_pool{0};
  WorkerPool::instance().run(2, [&](int) {
    EXPECT_TRUE(WorkerPool::on_pool_worker());
    // The pool is held by this very run: the nested run must complete on
    // plain threads (which report on_pool_worker() == false).
    WorkerPool::instance().run(3, [&](int) {
      if (WorkerPool::on_pool_worker()) inner_on_pool.fetch_add(1);
      inner_done.fetch_add(1);
    });
    outer_done.fetch_add(1);
  });
  EXPECT_EQ(outer_done.load(), 2);
  EXPECT_EQ(inner_done.load(), 6);
  EXPECT_EQ(inner_on_pool.load(), 0);
}

TEST(WorkerPool, ConcurrentRunsBothComplete) {
  // Two top-level runs race for the pool: one wins the serial lock, the
  // loser silently degrades to plain threads.  Both must finish with every
  // task executed exactly once.
  std::vector<std::atomic<int>> hits_a(8);
  std::vector<std::atomic<int>> hits_b(8);
  std::thread ta([&] {
    WorkerPool::instance().run(
        8, [&](int i) { hits_a[static_cast<std::size_t>(i)].fetch_add(1); });
  });
  std::thread tb([&] {
    WorkerPool::instance().run(
        8, [&](int i) { hits_b[static_cast<std::size_t>(i)].fetch_add(1); });
  });
  ta.join();
  tb.join();
  for (const auto& h : hits_a) EXPECT_EQ(h.load(), 1);
  for (const auto& h : hits_b) EXPECT_EQ(h.load(), 1);
}

}  // namespace
}  // namespace camb
