// Stress: randomized crash-recovery sweeps over both ABFT algorithms.
// Crash rank, crash window, and master seed all derive from one sweep RNG,
// so any failure reproduces from the seed logged in the assertion message.
#include <gtest/gtest.h>

#include "matmul/abft.hpp"
#include "matmul/runner.hpp"
#include "util/rng.hpp"

namespace camb {
namespace {

TEST(StressCrash, RandomizedRecoverySweepIsAlwaysBitExact) {
  Rng sweep(0x5EED5);
  int fired = 0;
  for (int iteration = 0; iteration < 48; ++iteration) {
    const bool use_summa = iteration % 2 == 0;
    const int P = use_summa ? 9 : 8;
    mm::RunOptions opts;
    opts.verify = mm::VerifyMode::kReference;
    opts.perturb.master_seed = 1000 + static_cast<std::uint64_t>(iteration);
    opts.crash.ranks = {
        static_cast<int>(sweep.below(static_cast<std::uint64_t>(P)))};
    opts.crash.max_send_position = static_cast<i64>(sweep.below(12));
    const mm::RunReport report =
        use_summa
            ? mm::run_summa_abft(
                  mm::SummaAbftConfig{mm::SummaConfig{{27, 15, 12}, 3}}, opts)
            : mm::run_grid3d_abft(
                  mm::Grid3dAbftConfig{
                      mm::Grid3dConfig{{12, 10, 8}, core::Grid3{2, 2, 2}}},
                  opts);
    ASSERT_TRUE(report.verified);
    ASSERT_EQ(report.max_abs_error, 0.0)
        << "iteration " << iteration << ": " << report.recovery.summary();
    fired += report.recovery.crashed.empty() ? 0 : 1;
  }
  EXPECT_GT(fired, 8);  // the sweep must exercise actual recoveries
}

// Perturbation and crashes together, under checkpointing: stragglers and
// message delays shuffle the schedule (and hence which receive observes the
// crash first), but detection must still converge to the same agreed failed
// set and the recovered output must stay bit-identical to the fault-free
// run.  16 sweep-derived seeds, alternating timing profiles.
TEST(StressCrash, PerturbedCheckpointedRecoveryConverges) {
  const mm::SummaConfig cfg{{27, 15, 12}, 3};
  const mm::RunReport plain =
      mm::run_summa(cfg, mm::RunOptions::verified(mm::VerifyMode::kReference));
  Rng sweep(0x5EED6);
  int fired = 0;
  for (int iteration = 0; iteration < 16; ++iteration) {
    mm::RunOptions opts;
    opts.verify = mm::VerifyMode::kReference;
    opts.perturb.profile = iteration % 2 == 0 ? "stragglers" : "delays";
    opts.perturb.master_seed = 2000 + static_cast<std::uint64_t>(iteration);
    opts.crash.ranks = {static_cast<int>(sweep.below(9))};
    opts.crash.max_send_position = 4 + static_cast<i64>(sweep.below(20));
    opts.checkpoint.interval = 1;
    opts.checkpoint.spares = 1;
    const mm::RunReport report = mm::run_summa(cfg, opts);
    ASSERT_TRUE(report.verified)
        << "iteration " << iteration << ": " << report.faults.summary();
    ASSERT_EQ(report.output_hash, plain.output_hash)
        << "iteration " << iteration << ": " << report.resilience.summary();
    ASSERT_EQ(report.max_abs_error, plain.max_abs_error)
        << "iteration " << iteration;
    // A crash firing after the rank's last needed send is benign: every
    // logical was claimed and the run finishes in one round.  Otherwise a
    // rollback ran, and detection must have converged: every crashed rank
    // lands in the agreed failed set.
    if (report.recovery.crashed.empty() || report.resilience.rounds < 2) {
      continue;
    }
    ++fired;
    for (int dead : report.recovery.crashed) {
      EXPECT_TRUE(std::find(report.resilience.failed.begin(),
                            report.resilience.failed.end(),
                            dead) != report.resilience.failed.end())
          << "iteration " << iteration << ": crashed rank " << dead
          << " missing; " << report.resilience.summary();
    }
  }
  EXPECT_GT(fired, 4);  // the sweep must exercise actual recoveries
}

}  // namespace
}  // namespace camb
