// Stress: randomized crash-recovery sweeps over both ABFT algorithms.
// Crash rank, crash window, and master seed all derive from one sweep RNG,
// so any failure reproduces from the seed logged in the assertion message.
#include <gtest/gtest.h>

#include "matmul/abft.hpp"
#include "matmul/runner.hpp"
#include "util/rng.hpp"

namespace camb {
namespace {

TEST(StressCrash, RandomizedRecoverySweepIsAlwaysBitExact) {
  Rng sweep(0x5EED5);
  int fired = 0;
  for (int iteration = 0; iteration < 48; ++iteration) {
    const bool use_summa = iteration % 2 == 0;
    const int P = use_summa ? 9 : 8;
    mm::RunOptions opts;
    opts.verify = mm::VerifyMode::kReference;
    opts.perturb.master_seed = 1000 + static_cast<std::uint64_t>(iteration);
    opts.crash.ranks = {
        static_cast<int>(sweep.below(static_cast<std::uint64_t>(P)))};
    opts.crash.max_send_position = static_cast<i64>(sweep.below(12));
    const mm::RunReport report =
        use_summa
            ? mm::run_summa_abft(
                  mm::SummaAbftConfig{mm::SummaConfig{{27, 15, 12}, 3}}, opts)
            : mm::run_grid3d_abft(
                  mm::Grid3dAbftConfig{
                      mm::Grid3dConfig{{12, 10, 8}, core::Grid3{2, 2, 2}}},
                  opts);
    ASSERT_TRUE(report.verified);
    ASSERT_EQ(report.max_abs_error, 0.0)
        << "iteration " << iteration << ": " << report.recovery.summary();
    fired += report.recovery.crashed.empty() ? 0 : 1;
  }
  EXPECT_GT(fired, 8);  // the sweep must exercise actual recoveries
}

}  // namespace
}  // namespace camb
