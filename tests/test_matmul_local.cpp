// Unit tests for matmul/local_gemm.hpp and matmul/distribution.hpp.
#include <gtest/gtest.h>

#include "matmul/distribution.hpp"
#include "matmul/local_gemm.hpp"
#include "util/error.hpp"

namespace camb::mm {
namespace {

TEST(LocalGemm, MatchesReferenceAcrossShapes) {
  for (const auto& [r, inner, c] :
       {std::array<i64, 3>{1, 1, 1}, {3, 4, 5}, {17, 9, 23}, {64, 64, 64},
        {65, 130, 3}, {128, 1, 128}}) {
    MatrixD a(r, inner), b(inner, c);
    a.fill_indexed(0, 0);
    b.fill_indexed(100, 7);
    const MatrixD expected = camb::matmul_reference(a, b);
    const MatrixD actual = gemm(a, b);
    EXPECT_LE(actual.max_abs_diff(expected), 1e-12)
        << r << "x" << inner << "x" << c;
  }
}

TEST(LocalGemm, AccumulatesIntoC) {
  MatrixD a(2, 2, 1.0), b(2, 2, 1.0), c(2, 2, 5.0);
  gemm_accumulate(a, b, c);
  EXPECT_DOUBLE_EQ(c(0, 0), 7.0);  // 5 + 2
}

TEST(LocalGemm, ShapeMismatchThrows) {
  MatrixD a(2, 3), b(2, 3), c(2, 3);
  EXPECT_THROW(gemm_accumulate(a, b, c), Error);
}

TEST(BlockDist1D, EvenSplit) {
  BlockDist1D d(12, 4);
  for (i64 i = 0; i < 4; ++i) {
    EXPECT_EQ(d.size(i), 3);
    EXPECT_EQ(d.start(i), 3 * i);
  }
}

TEST(BlockDist1D, RemainderSpreadFirst) {
  BlockDist1D d(10, 4);  // sizes 3,3,2,2
  EXPECT_EQ(d.size(0), 3);
  EXPECT_EQ(d.size(1), 3);
  EXPECT_EQ(d.size(2), 2);
  EXPECT_EQ(d.size(3), 2);
  EXPECT_EQ(d.start(2), 6);
  EXPECT_EQ(d.end(3), 10);
}

TEST(BlockDist1D, CoversWithoutGaps) {
  for (i64 total : {0, 1, 7, 100}) {
    for (i64 parts : {1, 2, 3, 8}) {
      BlockDist1D d(total, parts);
      i64 cursor = 0;
      for (i64 i = 0; i < parts; ++i) {
        EXPECT_EQ(d.start(i), cursor);
        cursor += d.size(i);
      }
      EXPECT_EQ(cursor, total);
    }
  }
}

TEST(BlockDist1D, OwnerInvertsStart) {
  BlockDist1D d(23, 5);
  for (i64 g = 0; g < 23; ++g) {
    const i64 o = d.owner(g);
    EXPECT_GE(g, d.start(o));
    EXPECT_LT(g, d.end(o));
  }
}

TEST(BlockDist1D, CountsVector) {
  BlockDist1D d(7, 3);
  EXPECT_EQ(d.counts(), (std::vector<i64>{3, 2, 2}));
}

TEST(GridMap, RankCoordinateRoundTrip) {
  GridMap map(Grid3{3, 4, 5});
  EXPECT_EQ(map.nprocs(), 60);
  for (int r = 0; r < 60; ++r) {
    const auto [q1, q2, q3] = map.coords_of(r);
    EXPECT_EQ(map.rank_of(q1, q2, q3), r);
  }
}

TEST(GridMap, FibersAreAxisAligned) {
  GridMap map(Grid3{2, 3, 4});
  const auto f2 = map.fiber(2, 1, 2, 0);  // (1, 2, *): 4 ranks
  ASSERT_EQ(f2.size(), 4u);
  for (i64 t = 0; t < 4; ++t) {
    EXPECT_EQ(f2[static_cast<std::size_t>(t)], map.rank_of(1, 2, t));
  }
  const auto f0 = map.fiber(0, 0, 1, 3);  // (*, 1, 3): 2 ranks
  ASSERT_EQ(f0.size(), 2u);
  EXPECT_EQ(f0[0], map.rank_of(0, 1, 3));
  EXPECT_EQ(f0[1], map.rank_of(1, 1, 3));
}

TEST(GridMap, FibersPartitionTheMachine) {
  // The axis-1 fibers partition all ranks into p1*p3 disjoint groups.
  GridMap map(Grid3{2, 3, 2});
  std::vector<int> seen(12, 0);
  for (i64 q1 = 0; q1 < 2; ++q1) {
    for (i64 q3 = 0; q3 < 2; ++q3) {
      for (int r : map.fiber(1, q1, 0, q3)) seen[static_cast<std::size_t>(r)]++;
    }
  }
  for (int count : seen) EXPECT_EQ(count, 1);
}

TEST(FillChunkIndexed, MatchesFullMatrixFill) {
  // A chunk of a block must reproduce the corresponding entries of the
  // reference matrix exactly.
  MatrixD full(10, 8);
  full.fill_indexed(0, 0);
  BlockChunk chunk;
  chunk.row0 = 2;
  chunk.col0 = 3;
  chunk.rows = 4;
  chunk.cols = 5;
  chunk.flat_start = 7;
  chunk.flat_size = 9;
  const auto data = fill_chunk_indexed(chunk);
  for (i64 f = 0; f < chunk.flat_size; ++f) {
    const i64 flat = chunk.flat_start + f;
    const i64 i = flat / chunk.cols, j = flat % chunk.cols;
    EXPECT_DOUBLE_EQ(data[static_cast<std::size_t>(f)],
                     full(chunk.row0 + i, chunk.col0 + j))
        << "f=" << f;
  }
}

}  // namespace
}  // namespace camb::mm
