// Unit tests for the baseline algorithms: SUMMA, Cannon, and the naive
// broadcast algorithm — correctness, exact comm accounting, and their
// relation to the lower bound.
#include <gtest/gtest.h>

#include "matmul/runner.hpp"

namespace camb::mm {
namespace {

using camb::core::Shape;

TEST(Summa, CorrectAcrossGridsAndShapes) {
  for (i64 g : {1, 2, 3, 4}) {
    for (const Shape& shape : {Shape{12, 12, 12}, Shape{13, 7, 9},
                               Shape{8, 20, 4}}) {
      const RunReport report = run_summa(SummaConfig{shape, g}, true);
      EXPECT_LE(report.max_abs_error, 1e-10)
          << "g=" << g << " shape=(" << shape.n1 << "," << shape.n2 << ","
          << shape.n3 << ")";
      EXPECT_EQ(report.measured_critical_recv, report.predicted_words());
    }
  }
}

TEST(Summa, RespectsLowerBound) {
  for (i64 g : {2, 3, 4}) {
    const Shape shape{24, 24, 24};
    const RunReport report = run_summa(SummaConfig{shape, g}, false);
    EXPECT_GE(static_cast<double>(report.measured_critical_recv) + 1e-6,
              report.lower_bound_words)
        << "g=" << g;
  }
}

TEST(Summa, CommMatchesClassicalFormula) {
  // Divisible square case: each rank receives (1 - 1/g)(n1 n2 + n2 n3)/g.
  const Shape shape{24, 24, 24};
  const i64 g = 4;
  const RunReport report = run_summa(SummaConfig{shape, g}, false);
  const double expected =
      (1.0 - 1.0 / g) * (24.0 * 24 / g + 24.0 * 24 / g);
  EXPECT_DOUBLE_EQ(static_cast<double>(report.measured_critical_recv),
                   expected);
}

TEST(Summa, PipelinedBroadcastVariantCorrectAndSameWords) {
  // SUMMA with pipelined-ring panel broadcasts: identical word counts (the
  // variant choice is invisible to the bounds), correct result, and a
  // shorter scheduled critical path on a bandwidth-bound machine.
  const Shape shape{48, 48, 48};
  const i64 g = 4;
  const auto binomial = run_summa(SummaConfig{shape, g}, true);
  SummaConfig ring_cfg{shape, g};
  ring_cfg.bcast = coll::BcastAlgo::kPipelinedRing;
  ring_cfg.bcast_segments = 4;
  const auto ring = run_summa(ring_cfg, true);
  EXPECT_LE(ring.max_abs_error, 1e-10);
  EXPECT_EQ(ring.measured_critical_recv, binomial.measured_critical_recv);
  // Under the default unit-alpha/unit-beta clock the panels (hundreds of
  // words) are bandwidth-bound, so pipelining wins schedule time.
  EXPECT_LT(ring.simulated_time, binomial.simulated_time);
}

TEST(Cannon, CorrectAcrossGridsAndShapes) {
  for (i64 g : {1, 2, 3, 4}) {
    for (const Shape& shape : {Shape{12, 12, 12}, Shape{13, 7, 9},
                               Shape{6, 18, 10}}) {
      const RunReport report = run_cannon(CannonConfig{shape, g}, true);
      EXPECT_LE(report.max_abs_error, 1e-10)
          << "g=" << g << " shape=(" << shape.n1 << "," << shape.n2 << ","
          << shape.n3 << ")";
      EXPECT_EQ(report.measured_critical_recv, report.predicted_words());
    }
  }
}

TEST(Cannon, PaysSkewOverhead) {
  // On a divisible square problem Cannon moves at least as much as SUMMA
  // (equal shifted volume plus the initial skew).
  const Shape shape{24, 24, 24};
  const i64 g = 4;
  const auto summa = run_summa(SummaConfig{shape, g}, false);
  const auto cannon = run_cannon(CannonConfig{shape, g}, false);
  EXPECT_GE(cannon.measured_critical_recv, summa.measured_critical_recv);
}

TEST(NaiveBcast, CorrectAndCounted) {
  for (i64 P : {1, 2, 5, 8}) {
    const Shape shape{12, 9, 7};
    const RunReport report = run_naive_bcast(NaiveBcastConfig{shape}, P, true);
    EXPECT_LE(report.max_abs_error, 1e-10) << "P=" << P;
    EXPECT_EQ(report.measured_critical_recv, report.predicted_words());
  }
}

TEST(NaiveBcast, CommunicationDoesNotScaleWithP) {
  // The pathology the bound exposes: per-rank received words stay ~constant
  // (the full inputs) as P grows, while the optimal algorithm's shrink.
  const Shape shape{16, 16, 16};
  const auto p2 = run_naive_bcast(NaiveBcastConfig{shape}, 2, false);
  const auto p8 = run_naive_bcast(NaiveBcastConfig{shape}, 8, false);
  EXPECT_EQ(p2.measured_critical_recv, p8.measured_critical_recv);
  // And it is far above the bound at P = 8.
  EXPECT_GT(static_cast<double>(p8.measured_critical_recv),
            2 * p8.lower_bound_words);
}

TEST(Baselines, OptimalAlgorithmBeatsBaselinesInTheirWeakRegime) {
  // Strongly rectangular shape in the 1D regime: the optimal 1D grid
  // communicates only (1 - 1/P) nk words, far less than square-grid SUMMA.
  const Shape shape{64, 8, 8};  // m/n = 8 >= P = 4
  const auto optimal =
      run_grid3d(Grid3dConfig{shape, Grid3{4, 1, 1}}, false);
  const auto summa = run_summa(SummaConfig{shape, 2}, false);  // P = 4 too
  EXPECT_LT(optimal.measured_critical_recv, summa.measured_critical_recv);
  EXPECT_DOUBLE_EQ(static_cast<double>(optimal.measured_critical_recv),
                   optimal.lower_bound_words);
}

}  // namespace
}  // namespace camb::mm
