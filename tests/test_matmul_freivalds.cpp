// Unit tests for matmul/freivalds.hpp — probabilistic product verification.
#include "matmul/freivalds.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "matmul/local_gemm.hpp"
#include "matmul/runner.hpp"
#include "util/error.hpp"

namespace camb::mm {
namespace {

using camb::core::Shape;

TEST(Freivalds, AcceptsCorrectProducts) {
  Rng rng(1);
  for (const auto& [r, k, c] :
       {std::array<i64, 3>{1, 1, 1}, {5, 7, 3}, {32, 16, 64}, {100, 3, 100}}) {
    MatrixD a(r, k), b(k, c);
    a.fill_indexed(0, 0);
    b.fill_indexed(9, 9);
    const MatrixD prod = gemm(a, b);
    EXPECT_TRUE(freivalds_check(a, b, prod, 16, rng))
        << r << "x" << k << "x" << c;
  }
}

TEST(Freivalds, RejectsSingleEntryCorruption) {
  Rng rng(2);
  MatrixD a(24, 24), b(24, 24);
  a.fill_indexed(0, 0);
  b.fill_indexed(5, 5);
  MatrixD bad = gemm(a, b);
  bad(11, 7) += 1e-3;
  // One trial misses a single corrupted entry iff x[7] = 0 (prob 1/2);
  // 32 trials make a false accept essentially impossible.
  EXPECT_FALSE(freivalds_check(a, b, bad, 32, rng));
}

TEST(Freivalds, RejectsTransposedResult) {
  Rng rng(3);
  MatrixD a(16, 16), b(16, 16);
  a.fill_indexed(0, 0);
  b.fill_indexed(3, 1);
  const MatrixD good = gemm(a, b);
  MatrixD transposed(16, 16);
  for (i64 i = 0; i < 16; ++i) {
    for (i64 j = 0; j < 16; ++j) transposed(i, j) = good(j, i);
  }
  EXPECT_FALSE(freivalds_check(a, b, transposed, 32, rng));
}

TEST(Freivalds, ResidualIsTinyForCorrectAndLargeForWrong) {
  Rng rng(4);
  MatrixD a(20, 20), b(20, 20);
  a.fill_indexed(0, 0);
  b.fill_indexed(2, 8);
  const MatrixD good = gemm(a, b);
  EXPECT_LT(freivalds_residual(a, b, good, 8, rng), 1e-12);
  MatrixD bad = good;
  bad(0, 0) += 1.0;
  EXPECT_GT(freivalds_residual(a, b, bad, 32, rng), 1e-6);
}

TEST(Freivalds, ShapeChecks) {
  Rng rng(5);
  MatrixD a(3, 4), b(5, 3), c(3, 3);
  EXPECT_THROW(freivalds_check(a, b, c, 4, rng), Error);
}

TEST(Freivalds, RunnerAutoModeUsesItForLargeShapes) {
  // A shape above the auto threshold still gets verified (via Freivalds);
  // the report carries a residual, not NaN.
  const Shape shape{512, 512, 512};  // 134M flops > auto threshold
  const auto report = run_grid3d(
      Grid3dConfig{shape, camb::core::Grid3{4, 4, 4}}, VerifyMode::kAuto);
  EXPECT_TRUE(report.verified);
  EXPECT_FALSE(std::isnan(report.max_abs_error));
  EXPECT_LT(report.max_abs_error, 1e-9);
}

TEST(Freivalds, RunnerReferenceAndFreivaldsAgreeOnSmallShapes) {
  const Shape shape{24, 24, 24};
  const auto ref = run_grid3d(
      Grid3dConfig{shape, camb::core::Grid3{2, 2, 2}}, VerifyMode::kReference);
  const auto fre = run_grid3d(
      Grid3dConfig{shape, camb::core::Grid3{2, 2, 2}}, VerifyMode::kFreivalds);
  EXPECT_LT(ref.max_abs_error, 1e-10);
  EXPECT_LT(fre.max_abs_error, 1e-10);
}

}  // namespace
}  // namespace camb::mm
