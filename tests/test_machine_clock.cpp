// Unit tests for the logical-clock time simulation: per-rank α-β clocks
// advanced by sends, synchronized by receives — the simulated critical-path
// execution time of a program.
#include <gtest/gtest.h>

#include <numeric>

#include "collectives/allgather.hpp"
#include "collectives/bcast.hpp"
#include "collectives/coll_cost.hpp"
#include "machine/machine.hpp"
#include "matmul/grid3d.hpp"
#include "matmul/time_model.hpp"

namespace camb {
namespace {

TEST(Clock, PingPongIsTwoTransfers) {
  Machine machine(2);
  machine.set_time_params(AlphaBeta{2.0, 0.5});
  machine.run([&](RankCtx& ctx) {
    if (ctx.rank() == 0) {
      ctx.send(1, 0, std::vector<double>(10));
      (void)ctx.recv(1, 1);
    } else {
      (void)ctx.recv(0, 0);
      ctx.send(0, 1, std::vector<double>(10));
    }
  });
  const double one_transfer = 2.0 + 0.5 * 10;
  EXPECT_DOUBLE_EQ(machine.final_clocks()[0], 2 * one_transfer);
  EXPECT_DOUBLE_EQ(machine.final_clocks()[1], 2 * one_transfer);
  EXPECT_DOUBLE_EQ(machine.critical_path_time(), 2 * one_transfer);
}

TEST(Clock, SelfTrafficIsFree) {
  Machine machine(1);
  machine.set_time_params(AlphaBeta{1.0, 1.0});
  machine.run([&](RankCtx& ctx) {
    ctx.send(0, 0, std::vector<double>(100));
    (void)ctx.recv(0, 0);
  });
  EXPECT_DOUBLE_EQ(machine.critical_path_time(), 0.0);
}

TEST(Clock, RingAllgatherMatchesTextbookTime) {
  // (p - 1) rounds of one block each: T = (p-1)(alpha + beta * b).
  const int p = 8;
  const i64 block = 32;
  Machine machine(p);
  machine.set_time_params(AlphaBeta{1e-3, 1e-6});
  machine.run([&](RankCtx& ctx) {
    (void)coll::allgather_equal(
        coll::Comm::world(ctx),
        std::vector<double>(static_cast<std::size_t>(block)),
        coll::AllgatherAlgo::kRing);
  });
  const double expected = (p - 1) * (1e-3 + 1e-6 * block);
  EXPECT_NEAR(machine.critical_path_time(), expected, 1e-12);
}

TEST(Clock, RecursiveDoublingMatchesTextbookTime) {
  // T = log2(p) * alpha + (p - 1) * b * beta (doubling message sizes).
  const int p = 8;
  const i64 block = 32;
  Machine machine(p);
  machine.set_time_params(AlphaBeta{1e-3, 1e-6});
  machine.run([&](RankCtx& ctx) {
    (void)coll::allgather_equal(
        coll::Comm::world(ctx),
        std::vector<double>(static_cast<std::size_t>(block)),
        coll::AllgatherAlgo::kRecursiveDoubling);
  });
  const double expected = 3 * 1e-3 + (p - 1) * block * 1e-6;
  EXPECT_NEAR(machine.critical_path_time(), expected, 1e-12);
}

TEST(Clock, BinomialBcastIsLogDepth) {
  // Every rank finishes by ceil(log2 p) serialized transfers of w words.
  const int p = 8;
  const i64 w = 64;
  Machine machine(p);
  machine.set_time_params(AlphaBeta{1.0, 0.0});  // count transfers
  machine.run([&](RankCtx& ctx) {
    std::vector<double> data;
    if (ctx.rank() == 0) data.assign(static_cast<std::size_t>(w), 1.0);
    coll::bcast(coll::Comm::world(ctx), 0, data, w);
  });
  EXPECT_DOUBLE_EQ(machine.critical_path_time(), 3.0);  // log2(8)
}

TEST(Clock, BarrierSynchronizesClocks) {
  Machine machine(4);
  machine.set_time_params(AlphaBeta{1.0, 0.0});
  machine.run([&](RankCtx& ctx) {
    // Rank 3 does some sends to rank 2 first; after the barrier everyone's
    // clock is at least rank 3's.
    if (ctx.rank() == 3) {
      for (int k = 0; k < 5; ++k) ctx.send(2, k, {1.0});
    } else if (ctx.rank() == 2) {
      for (int k = 0; k < 5; ++k) (void)ctx.recv(3, k);
    }
    ctx.barrier();
    EXPECT_GE(ctx.clock(), 5.0);
  });
  for (double clock : machine.final_clocks()) EXPECT_DOUBLE_EQ(clock, 5.0);
}

TEST(Clock, AdvanceClockModelsLocalWork) {
  Machine machine(2);
  machine.set_time_params(AlphaBeta{0.0, 0.0});
  machine.run([&](RankCtx& ctx) {
    if (ctx.rank() == 0) {
      ctx.advance_clock(7.5);
      ctx.send(1, 0, {1.0});
    } else {
      (void)ctx.recv(0, 0);
      // The receiver inherits the sender's compute delay.
      EXPECT_DOUBLE_EQ(ctx.clock(), 7.5);
    }
  });
  EXPECT_DOUBLE_EQ(machine.critical_path_time(), 7.5);
}

TEST(Clock, Alg1SimulatedTimeMatchesClosedForm) {
  // On a divisible grid with symmetric recursive collectives, the scheduled
  // critical path equals the closed-form latency + bandwidth terms exactly.
  const core::Shape shape{32, 16, 8};
  const core::Grid3 grid{2, 2, 2};
  mm::MachineParams params{1e-4, 1e-7, 0.0};
  Machine machine(8);
  machine.set_time_params(AlphaBeta{params.alpha, params.beta});
  mm::Grid3dConfig cfg{shape, grid};
  machine.run([&](RankCtx& ctx) { (void)mm::grid3d_rank(ctx, cfg); });
  const auto closed = mm::alg1_time(shape, grid, params);
  EXPECT_NEAR(machine.critical_path_time(),
              closed.latency + closed.bandwidth, 1e-12);
}

TEST(Clock, DependencyDepthInvisibleToCountersShowsUpInTime) {
  // Two programs with IDENTICAL per-rank counter profiles (every active rank
  // sends at most one w-word message and receives at most one): a dependency
  // chain 0 -> 1 -> 2 -> 3 versus three independent pairs.  The counters
  // cannot tell them apart; the clock shows the 3x critical-path difference.
  const i64 w = 100;
  const AlphaBeta params{1.0, 1.0};
  const double transfer = 1.0 + 1.0 * w;
  double chain_time, pairs_time;
  i64 chain_max_sent, pairs_max_sent;
  {
    Machine machine(6);
    machine.set_time_params(params);
    machine.run([&](RankCtx& ctx) {
      const int r = ctx.rank();
      if (r >= 1 && r <= 3) (void)ctx.recv(r - 1, 0);
      if (r <= 2) ctx.send(r + 1, 0, std::vector<double>(w));
    });
    chain_time = machine.critical_path_time();
    chain_max_sent = machine.stats().critical_path_sent_words();
  }
  {
    Machine machine(6);
    machine.set_time_params(params);
    machine.run([&](RankCtx& ctx) {
      const int r = ctx.rank();
      if (r % 2 == 0) ctx.send(r + 1, 0, std::vector<double>(w));
      else (void)ctx.recv(r - 1, 0);
    });
    pairs_time = machine.critical_path_time();
    pairs_max_sent = machine.stats().critical_path_sent_words();
  }
  EXPECT_EQ(chain_max_sent, pairs_max_sent);  // counters: identical
  EXPECT_DOUBLE_EQ(chain_time, 3 * transfer);  // clock: 3x apart
  EXPECT_DOUBLE_EQ(pairs_time, transfer);
}

}  // namespace
}  // namespace camb
