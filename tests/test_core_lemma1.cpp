// Unit tests for core/lemma1_access.hpp: the per-array access lower bounds.
#include "core/lemma1_access.hpp"

#include <gtest/gtest.h>

#include "core/loomis_whitney.hpp"
#include "util/error.hpp"

namespace camb::core {
namespace {

TEST(Lemma1, StatementValues) {
  // A processor doing 1/P of the work must touch n1n2/P of A, n2n3/P of B,
  // n1n3/P of C.
  const Shape s{8, 6, 4};
  const auto b = access_bounds(s, 2.0);
  EXPECT_DOUBLE_EQ(b.a, 8 * 6 / 2.0);
  EXPECT_DOUBLE_EQ(b.b, 6 * 4 / 2.0);
  EXPECT_DOUBLE_EQ(b.c, 8 * 4 / 2.0);
}

TEST(Lemma1, GeneralWorkVolume) {
  const Shape s{8, 6, 4};
  const auto b = access_bounds_for_work(s, 48.0);
  EXPECT_DOUBLE_EQ(b.a, 48.0 / 4);  // work / n3
  EXPECT_DOUBLE_EQ(b.b, 48.0 / 8);  // work / n1
  EXPECT_DOUBLE_EQ(b.c, 48.0 / 6);  // work / n2
}

TEST(Lemma1, MultiplicationsPerElement) {
  const Shape s{8, 6, 4};
  EXPECT_EQ(multiplications_per_element(s, MatrixId::A), 4);
  EXPECT_EQ(multiplications_per_element(s, MatrixId::B), 8);
  EXPECT_EQ(multiplications_per_element(s, MatrixId::C), 6);
}

TEST(Lemma1, RejectsBadInput) {
  const Shape s{8, 6, 4};
  EXPECT_THROW(access_bounds(s, 0.5), Error);
  EXPECT_THROW(access_bounds_for_work(s, -1), Error);
  EXPECT_THROW(access_bounds_for_work(s, 1e9), Error);
}

TEST(Lemma1, HoldsForEveryExplicitWorkSet) {
  // Mechanical verification of the proof's counting argument: for any set F
  // of multiplications with |F| >= work, the projections onto A, B, C are at
  // least the Lemma 1 bounds for that work volume.
  const Shape s{3, 2, 2};  // 12 points
  const auto universe = full_iteration_space(s, 100);
  // All subsets of size 6 (|universe| choose 6 = 924 subsets).
  std::vector<Point3> subset;
  // Simple bitmask enumeration over 12 points.
  for (unsigned mask = 0; mask < (1u << 12); ++mask) {
    if (__builtin_popcount(mask) != 6) continue;
    subset.clear();
    for (int bit = 0; bit < 12; ++bit) {
      if (mask & (1u << bit)) {
        subset.push_back(universe[static_cast<std::size_t>(bit)]);
      }
    }
    const auto proj = projections(subset);
    const auto bound = access_bounds_for_work(s, 6.0);
    EXPECT_GE(static_cast<double>(proj.onto_a) + 1e-12, bound.a);
    EXPECT_GE(static_cast<double>(proj.onto_b) + 1e-12, bound.b);
    EXPECT_GE(static_cast<double>(proj.onto_c) + 1e-12, bound.c);
  }
}

TEST(Lemma1, TightForPerfectSlabs) {
  // A slab of the iteration space achieves the A bound with equality:
  // the set {(i1,i2,i3) : i3 < t} projects onto exactly n1*n2 elements of A
  // when it contains n1*n2*t points.
  const Shape s{4, 3, 6};
  std::vector<Point3> slab;
  for (i64 i1 = 0; i1 < 4; ++i1) {
    for (i64 i2 = 0; i2 < 3; ++i2) {
      for (i64 i3 = 0; i3 < 2; ++i3) slab.push_back({i1, i2, i3});
    }
  }
  const auto proj = projections(slab);
  // work = 24 = n1 n2 n3 / 3; Lemma 1's A bound = 24/6 = 4 <= 12 (loose),
  // the B and C bounds are work/n1 = 6 and work/n2 = 8, both achieved by
  // |φB| = 3*2 = 6 and |φC| = 4*2 = 8 exactly.
  EXPECT_EQ(proj.onto_a, 12);
  EXPECT_EQ(proj.onto_b, 6);
  EXPECT_EQ(proj.onto_c, 8);
  const auto bound = access_bounds_for_work(s, 24.0);
  EXPECT_DOUBLE_EQ(bound.b, 6.0);
  EXPECT_DOUBLE_EQ(bound.c, 8.0);
}

}  // namespace
}  // namespace camb::core
