// The fiber scheduler's determinism battery (machine/fiber.hpp).
//
// The headline test is the interleaving fuzz: every registered algorithm,
// at small P, re-run under N seeded random yield orders (chaos mode: one
// worker, seeded run-queue picks, forced yields after every send and
// receive).  The simulation's contract is that its observables — per-rank
// word/message counters, the assembled output's bits, and the scheduled
// critical-path time — are functions of the program, never of the
// interleaving; every chaos schedule must therefore reproduce the
// thread-per-rank baseline exactly.
//
// Around it: direct unit tests of the scheduler itself — completion,
// Fiber::current(), many-fibers-on-few-workers multiplexing, rank-body
// exceptions, and the deadlock detector (a genuine all-parked state must
// be *reported*, not hung on, which thread-per-rank execution cannot do).
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "machine/fiber.hpp"
#include "machine/machine.hpp"
#include "matmul/algorithm_registry.hpp"
#include "matmul/runner.hpp"
#include "util/error.hpp"

namespace camb {
namespace {

TEST(FiberScheduler, RunsEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(64);
  FiberScheduler::run(64, [&](int i) {
    EXPECT_NE(Fiber::current(), nullptr);
    EXPECT_EQ(Fiber::current()->index(), i);
    hits[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_EQ(Fiber::current(), nullptr) << "fiber leaked past run()";
}

TEST(FiberScheduler, ZeroAndNegativeCountsAreNoops) {
  bool ran = false;
  FiberScheduler::run(0, [&](int) { ran = true; });
  FiberScheduler::run(-3, [&](int) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(FiberScheduler, ManyFibersMultiplexOnTwoWorkers) {
  FiberScheduler::Options opts;
  opts.workers = 2;
  std::atomic<int> done{0};
  std::mutex m;
  FiberWaitList waiters;
  int arrivals = 0;
  // A hand-rolled barrier across 256 fibers: with only two workers this
  // cannot complete unless parked fibers release their worker threads.
  FiberScheduler::run(
      256,
      [&](int) {
        std::unique_lock<std::mutex> lock(m);
        if (++arrivals == 256) {
          waiters.notify_all();
        } else {
          while (arrivals < 256) Fiber::current()->park_on(waiters, lock);
          waiters.notify_all();  // chains: each wakeup frees the next
        }
        done.fetch_add(1);
      },
      opts);
  EXPECT_EQ(done.load(), 256);
}

TEST(FiberScheduler, RankBodyExceptionPropagates) {
  try {
    FiberScheduler::run(8, [](int i) {
      if (i == 5) throw Error("rank five exploded");
    });
    FAIL() << "exception was swallowed";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("rank five exploded"),
              std::string::npos);
  }
}

TEST(FiberScheduler, DeadlockDetectedAndReported) {
  std::mutex m;
  FiberWaitList never_notified;
  try {
    // Both fibers park forever; thread-per-rank execution would hang here.
    FiberScheduler::run(2, [&](int) {
      std::unique_lock<std::mutex> lock(m);
      Fiber::current()->park_on(never_notified, lock);
    });
    FAIL() << "deadlock was not detected";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("deadlock"), std::string::npos)
        << e.what();
  }
}

TEST(FiberScheduler, KindNamesRoundTrip) {
  EXPECT_EQ(scheduler_kind_from_name("threads"), SchedulerKind::kThreads);
  EXPECT_EQ(scheduler_kind_from_name("fibers"), SchedulerKind::kFibers);
  EXPECT_EQ(scheduler_kind_from_name("default"), SchedulerKind::kDefault);
  EXPECT_STREQ(scheduler_kind_name(SchedulerKind::kThreads), "threads");
  EXPECT_STREQ(scheduler_kind_name(SchedulerKind::kFibers), "fibers");
  EXPECT_THROW(scheduler_kind_from_name("coroutines"), Error);
  EXPECT_EQ(resolve_scheduler_kind(SchedulerKind::kFibers),
            SchedulerKind::kFibers);
  EXPECT_NE(resolve_scheduler_kind(SchedulerKind::kDefault),
            SchedulerKind::kDefault);
}

// ---------------------------------------------------------------------------
// The interleaving fuzz.

/// Everything the simulation is allowed to observe about a run.
struct Observables {
  std::vector<double> recv, sent;
  std::vector<i64> messages;
  std::uint64_t output_hash = 0;
  std::uint64_t time_bits = 0;  ///< simulated_time, exact bit pattern
  std::map<std::string, double> phase_recv;

  bool operator==(const Observables& o) const {
    return recv == o.recv && sent == o.sent && messages == o.messages &&
           output_hash == o.output_hash && time_bits == o.time_bits &&
           phase_recv == o.phase_recv;
  }
};

Observables observe(const mm::RunReport& report) {
  Observables obs;
  obs.recv = report.rank_recv_words;
  obs.sent = report.rank_sent_words;
  obs.messages = report.rank_messages;
  obs.output_hash = report.output_hash;
  static_assert(sizeof(obs.time_bits) == sizeof(report.simulated_time));
  std::memcpy(&obs.time_bits, &report.simulated_time, sizeof(obs.time_bits));
  obs.phase_recv = report.phase_recv;
  return obs;
}

/// Every registered algorithm, at each supported small P, under
/// kChaosSchedules seeded random yield orders: all observables must equal
/// the thread-per-rank baseline's.  This is the determinism contract under
/// the most adversarial schedules the simulator can produce.
TEST(FiberInterleavingFuzz, AllAlgorithmsInvariantUnderRandomYieldOrders) {
  const core::Shape shape{24, 20, 28};
  const std::vector<i64> procs = {8, 9};
  constexpr std::uint64_t kChaosSchedules = 8;
  for (const auto& algo : mm::algorithm_registry()) {
    for (i64 p : procs) {
      if (!algo.supports(shape, p)) continue;
      mm::RunOptions base = mm::RunOptions::verified(mm::VerifyMode::kReference);
      base.scheduler.kind = SchedulerKind::kThreads;
      const Observables golden = observe(algo.run_opts(shape, p, base));
      for (std::uint64_t seed = 1; seed <= kChaosSchedules; ++seed) {
        mm::RunOptions chaos = base;
        chaos.scheduler.kind = SchedulerKind::kFibers;
        chaos.scheduler.interleave_seed = seed;
        const Observables got = observe(algo.run_opts(shape, p, chaos));
        EXPECT_TRUE(got == golden)
            << algo.name << " P=" << p << " diverged under yield order "
            << seed;
      }
    }
  }
}

/// Crash + rollback under chaos schedules: recovery is the most
/// schedule-sensitive machinery (failure detection, abandon cascades,
/// rollback rounds), so its observables get their own fuzz.
TEST(FiberInterleavingFuzz, CrashRecoveryInvariantUnderRandomYieldOrders) {
  const mm::SummaConfig cfg{{27, 15, 12}, 3};
  mm::RunOptions base = mm::RunOptions::verified(mm::VerifyMode::kReference);
  base.perturb.master_seed = 11;
  base.crash.ranks = {4};
  base.crash.max_send_position = 8;
  base.checkpoint.interval = 1;
  base.checkpoint.spares = 1;
  base.scheduler.kind = SchedulerKind::kThreads;
  const mm::RunReport threads = mm::run_summa(cfg, base);
  ASSERT_FALSE(threads.recovery.crashed.empty());
  const Observables golden = observe(threads);
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    mm::RunOptions chaos = base;
    chaos.scheduler.kind = SchedulerKind::kFibers;
    chaos.scheduler.interleave_seed = seed;
    const mm::RunReport report = mm::run_summa(cfg, chaos);
    EXPECT_TRUE(observe(report) == golden)
        << "recovery diverged under yield order " << seed << ": "
        << report.resilience.summary();
    EXPECT_EQ(report.recovery.crashed, threads.recovery.crashed)
        << "yield order " << seed;
    EXPECT_EQ(report.resilience.rounds, threads.resilience.rounds)
        << "yield order " << seed;
  }
}

/// The same chaos seed must give the same schedule: chaos mode is a debug
/// tool, and a non-replayable fuzzer is useless.  (Different seeds already
/// proved result-invariance above; this pins schedule replayability.)
TEST(FiberInterleavingFuzz, ChaosScheduleIsReplayable) {
  const core::Shape shape{24, 20, 28};
  const auto& algo = mm::algorithm_by_name("summa");
  mm::RunOptions chaos = mm::RunOptions::verified(mm::VerifyMode::kReference);
  chaos.scheduler.kind = SchedulerKind::kFibers;
  chaos.scheduler.interleave_seed = 7;
  const Observables a = observe(algo.run_opts(shape, 9, chaos));
  const Observables b = observe(algo.run_opts(shape, 9, chaos));
  EXPECT_TRUE(a == b);
}

// ---------------------------------------------------------------------------
// Machine-level plumbing.

TEST(FiberMachine, EnvAndDefaultKindPlumbing) {
  // set_default_scheduler_kind overrides; kDefault specs resolve through it.
  set_default_scheduler_kind(SchedulerKind::kFibers);
  EXPECT_EQ(resolve_scheduler_kind(SchedulerKind::kDefault),
            SchedulerKind::kFibers);
  EXPECT_EQ(resolve_scheduler_kind(SchedulerKind::kThreads),
            SchedulerKind::kThreads);
  set_default_scheduler_kind(SchedulerKind::kDefault);  // back to env/threads
}

TEST(FiberMachine, MachineRunsUnderExplicitFiberSpec) {
  Machine machine(16);
  SchedulerSpec spec;
  spec.kind = SchedulerKind::kFibers;
  machine.set_scheduler(spec);
  std::atomic<int> sum{0};
  machine.run([&](RankCtx& ctx) {
    if (ctx.rank() > 0) {
      ctx.send(0, 1, std::vector<double>(3, 1.0));
    } else {
      for (int src = 1; src < 16; ++src) {
        std::vector<double> got = ctx.recv(src, 1);
        EXPECT_EQ(got.size(), 3u);
      }
    }
    ctx.barrier();
    sum.fetch_add(1);
  });
  EXPECT_EQ(sum.load(), 16);
  EXPECT_EQ(machine.stats().total_words_sent(), 45);
}

/// A Machine::run nested inside a fiber's rank body must not wedge the
/// scheduler: the inner machine's thread-per-rank mode falls back to plain
/// std::threads (the WorkerPool is held by the outer run's workers).
TEST(FiberMachine, NestedMachineRunInsideFiberCompletes) {
  Machine outer(4);
  SchedulerSpec spec;
  spec.kind = SchedulerKind::kFibers;
  outer.set_scheduler(spec);
  std::atomic<int> inner_total{0};
  outer.run([&](RankCtx& ctx) {
    if (ctx.rank() == 0) {
      Machine inner(2);
      inner.run([&](RankCtx& ictx) {
        if (ictx.rank() == 0) {
          ictx.send(1, 1, std::vector<double>(2, 1.0));
        } else {
          (void)ictx.recv(0, 1);
        }
        inner_total.fetch_add(1);
      });
    }
    ctx.barrier();
  });
  EXPECT_EQ(inner_total.load(), 2);
}

}  // namespace
}  // namespace camb
