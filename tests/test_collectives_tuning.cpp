// Unit tests for collectives/tuning.hpp — model-driven variant selection.
#include "collectives/tuning.hpp"

#include "machine/machine.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace camb::coll {
namespace {

TEST(Tuning, AllgatherPrefersLogRoundVariants) {
  const TuningParams params{1e-5, 1e-9};
  EXPECT_EQ(choose_allgather(8, 8000, params),
            AllgatherAlgo::kRecursiveDoubling);
  EXPECT_EQ(choose_allgather(12, 12000, params), AllgatherAlgo::kBruck);
}

TEST(Tuning, AllgatherModelTimesAreConsistentWithCosts) {
  const TuningParams params{2.0, 3.0};
  // ring on p=4, 8 words: 3 messages + 6 words -> 2*3 + 3*6 = 24.
  EXPECT_DOUBLE_EQ(allgather_model_time(4, 8, AllgatherAlgo::kRing, params),
                   24.0);
  // recursive doubling: 2 messages, same words -> 2*2 + 3*6 = 22.
  EXPECT_DOUBLE_EQ(
      allgather_model_time(4, 8, AllgatherAlgo::kRecursiveDoubling, params),
      22.0);
}

TEST(Tuning, ReduceScatterChoosesHalvingOnPow2) {
  const TuningParams params{1e-5, 1e-9};
  EXPECT_EQ(choose_reduce_scatter(8, 8000, params),
            ReduceScatterAlgo::kRecursiveHalving);
  EXPECT_EQ(choose_reduce_scatter(6, 6000, params), ReduceScatterAlgo::kRing);
}

TEST(Tuning, AlltoallCrossoverFlipsWithBlockSize) {
  // Latency-heavy machine: small blocks -> Bruck, large blocks -> pairwise.
  const TuningParams params{1e-4, 1e-9};
  const int p = 16;
  EXPECT_EQ(choose_alltoall(p, 1, params), AlltoallAlgo::kBruck);
  EXPECT_EQ(choose_alltoall(p, 1 << 24, params), AlltoallAlgo::kPairwise);
  // The choice flips exactly at the predicted crossover.
  const double crossover = alltoall_bruck_crossover_block(p, params);
  ASSERT_GT(crossover, 1.0);
  const auto below = static_cast<i64>(crossover * 0.9);
  const auto above = static_cast<i64>(crossover * 1.1);
  EXPECT_EQ(choose_alltoall(p, below, params), AlltoallAlgo::kBruck);
  EXPECT_EQ(choose_alltoall(p, above, params), AlltoallAlgo::kPairwise);
}

TEST(Tuning, CrossoverScalesWithAlphaOverBeta) {
  const int p = 16;
  const double c1 =
      alltoall_bruck_crossover_block(p, TuningParams{1e-4, 1e-9});
  const double c2 =
      alltoall_bruck_crossover_block(p, TuningParams{2e-4, 1e-9});
  EXPECT_NEAR(c2, 2 * c1, 1e-9 * c2);
}

TEST(Tuning, CrossoverDegenerateCases) {
  const TuningParams params{1e-6, 1e-9};
  // p = 2: Bruck and pairwise coincide (1 round, 1 block) — never strictly
  // better, crossover infinite (Bruck "always at least ties").
  EXPECT_TRUE(std::isinf(alltoall_bruck_crossover_block(2, params)));
}

TEST(Tuning, BcastChoiceFollowsPayloadSize) {
  const TuningParams params{1e-5, 1e-6};
  const int p = 8;
  EXPECT_EQ(choose_bcast(p, 4, params), BcastAlgo::kBinomial);
  EXPECT_EQ(choose_bcast(p, 1 << 16, params), BcastAlgo::kPipelinedRing);
}

TEST(Tuning, OptimalSegmentsScaleAsSqrt) {
  const TuningParams params{1e-5, 1e-6};
  const int p = 10;
  const i64 s1 = optimal_bcast_segments(p, 1 << 12, params);
  const i64 s4 = optimal_bcast_segments(p, 1 << 14, params);  // 4x payload
  EXPECT_NEAR(static_cast<double>(s4), 2.0 * static_cast<double>(s1),
              0.1 * static_cast<double>(s4));
  EXPECT_GE(s1, 1);
  EXPECT_LE(optimal_bcast_segments(p, 1, params), 1);
}

TEST(Tuning, BcastModelDegenerateCases) {
  const TuningParams params{1e-5, 1e-6};
  EXPECT_DOUBLE_EQ(bcast_model_time(1, 100, BcastAlgo::kBinomial, 1, params),
                   0.0);
  // p = 2: the ring is a single hop; with one segment the two models agree.
  EXPECT_DOUBLE_EQ(
      bcast_model_time(2, 64, BcastAlgo::kPipelinedRing, 1, params),
      bcast_model_time(2, 64, BcastAlgo::kBinomial, 1, params));
}

TEST(Tuning, BcastModelTracksScheduledTime) {
  // The ring model's (p - 2 + s)(alpha + beta w/s) matches the machine's
  // scheduled critical path for divisible segments.
  const int p = 6;
  const i64 w = 120;
  const i64 segments = 4;  // 30-word segments
  const TuningParams params{1e-3, 1e-5};
  Machine machine(p);
  machine.set_time_params(AlphaBeta{params.alpha, params.beta});
  machine.run([&](RankCtx& ctx) {
    std::vector<double> data;
    if (ctx.rank() == 0) data.assign(static_cast<std::size_t>(w), 1.0);
    bcast(Comm::world(ctx), 0, data, w, BcastAlgo::kPipelinedRing, segments);
  });
  EXPECT_NEAR(machine.critical_path_time(),
              bcast_model_time(p, w, BcastAlgo::kPipelinedRing, segments,
                               params),
              1e-12);
}

TEST(Tuning, AlltoallModelMatchesMeasured) {
  // Sanity: the model's word counts are the ones the executed collective
  // produced in test_collectives (re-checked via the cost functions here).
  const int p = 8;
  const i64 block = 16;
  const TuningParams words_only{0.0, 1.0};
  EXPECT_DOUBLE_EQ(
      alltoall_model_time(p, block, AlltoallAlgo::kPairwise, words_only),
      static_cast<double>((p - 1) * block));
  EXPECT_DOUBLE_EQ(
      alltoall_model_time(p, block, AlltoallAlgo::kBruck, words_only),
      static_cast<double>(alltoall_bruck_recv_words(p, block)));
}

}  // namespace
}  // namespace camb::coll
