// Unit tests for matmul/alg25d.hpp — the 2.5D replication algorithm:
// correctness, exact comm accounting, the memory-for-communication
// trade-off, and its relation to Algorithm 1 and the lower bound.
#include "matmul/alg25d.hpp"

#include <gtest/gtest.h>

#include "matmul/runner.hpp"

namespace camb::mm {
namespace {

using camb::core::Shape;

void expect_correct_and_counted(const Shape& shape, i64 g, i64 c) {
  const RunReport report = run_alg25d(Alg25dConfig{shape, g, c}, true);
  EXPECT_LE(report.max_abs_error, 1e-10)
      << "shape=(" << shape.n1 << "," << shape.n2 << "," << shape.n3
      << ") g=" << g << " c=" << c;
  EXPECT_EQ(report.measured_critical_recv, report.predicted_words())
      << "g=" << g << " c=" << c;
  EXPECT_GE(static_cast<double>(report.measured_critical_recv) + 1e-6,
            report.lower_bound_words);
}

TEST(Alg25d, SingleLayerIsCannon) {
  // c = 1 degenerates to Cannon: same result, same words as cannon_rank.
  const Shape shape{12, 12, 12};
  const auto flat = run_alg25d(Alg25dConfig{shape, 3, 1}, true);
  const auto cannon = run_cannon(CannonConfig{shape, 3}, true);
  EXPECT_LE(flat.max_abs_error, 1e-10);
  EXPECT_EQ(flat.measured_critical_recv, cannon.measured_critical_recv);
}

TEST(Alg25d, CorrectAcrossGridsAndShapes) {
  expect_correct_and_counted(Shape{8, 8, 8}, 2, 2);
  expect_correct_and_counted(Shape{12, 12, 12}, 4, 2);
  expect_correct_and_counted(Shape{16, 8, 12}, 4, 4);
  expect_correct_and_counted(Shape{13, 9, 7}, 2, 2);   // non-divisible dims
  expect_correct_and_counted(Shape{10, 20, 30}, 6, 3); // rectangular
}

TEST(Alg25d, TrivialMachine) {
  expect_correct_and_counted(Shape{6, 5, 4}, 1, 1);
}

TEST(Alg25d, RejectsBadConfigs) {
  camb::Machine machine(8);
  EXPECT_THROW(machine.run([&](camb::RankCtx& ctx) {
                 (void)alg25d_rank(ctx, Alg25dConfig{Shape{8, 8, 8}, 4, 3});
               }),
               Error);  // c does not divide g (and 4*4*3 != 8)
}

TEST(Alg25d, ReplicationReducesShiftTraffic) {
  // Same P = 16: (g=4, c=1) vs (g=2, c=4)... keep g fixed instead: compare
  // c = 1 and c = 2 at g = 4 (different P but per-rank words must drop with
  // c because each layer does only g/c shift steps).
  const Shape shape{24, 24, 24};
  const auto c1 = run_alg25d(Alg25dConfig{shape, 4, 1}, false);
  const auto c2 = run_alg25d(Alg25dConfig{shape, 4, 2}, false);
  const auto c4 = run_alg25d(Alg25dConfig{shape, 4, 4}, false);
  auto phase_words = [](const RunReport& report, const char* name) {
    const auto it = report.phase_recv.find(name);
    return it == report.phase_recv.end() ? i64{0} : it->second;
  };
  // Shift traffic shrinks as c grows (c = 4 does zero shift steps);
  // replication adds ~2 blocks, absent at c = 1.
  EXPECT_LT(phase_words(c4, kPhase25dShift), phase_words(c1, kPhase25dShift));
  EXPECT_LT(phase_words(c2, kPhase25dShift), phase_words(c1, kPhase25dShift));
  EXPECT_EQ(phase_words(c1, kPhase25dReplicate), 0);
  EXPECT_GT(phase_words(c2, kPhase25dReplicate), 0);
}

TEST(Alg25d, RespectsLowerBoundEverywhere) {
  for (const auto& [g, c] : {std::pair<i64, i64>{2, 1}, {2, 2}, {4, 2},
                             {4, 4}, {6, 2}}) {
    const Shape shape{24, 24, 24};
    const auto report = run_alg25d(Alg25dConfig{shape, g, c}, false);
    EXPECT_GE(static_cast<double>(report.measured_critical_recv) + 1e-6,
              report.lower_bound_words)
        << "g=" << g << " c=" << c;
  }
}

TEST(Alg25d, MemoryModelIsPerLayerBlocks) {
  const Alg25dConfig cfg{Shape{24, 24, 24}, 4, 2};
  EXPECT_DOUBLE_EQ(alg25d_memory_words(cfg), 3.0 * 24 * 24 / 16);
}

TEST(Alg25d, CostModelMatchesMeasuredCriticalPath) {
  const Alg25dConfig cfg{Shape{24, 24, 24}, 4, 2};
  const auto report = run_alg25d(cfg, false);
  EXPECT_DOUBLE_EQ(alg25d_cost_words(cfg),
                   static_cast<double>(report.measured_critical_recv));
}

TEST(Alg25d, Alg1MatchesOrBeats25dBandwidth) {
  // §2.4: Algorithm 1 on the matched (g, c, g) grid achieves the 2.5D
  // bandwidth with plain collectives.
  const Shape shape{24, 24, 24};
  const i64 g = 4, c = 2;
  const auto alg25d = run_alg25d(Alg25dConfig{shape, g, c}, false);
  const auto alg1 = run_grid3d(
      Grid3dConfig{shape, camb::core::Grid3{g, c, g}}, false);
  EXPECT_LE(alg1.measured_critical_recv, alg25d.measured_critical_recv);
}

}  // namespace
}  // namespace camb::mm
