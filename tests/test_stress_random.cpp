// Randomized cross-algorithm stress test: every registered algorithm on
// randomized shapes and machine sizes, all four invariants at once —
// correctness, exact comm accounting, bound respected, volume conservation.
#include <gtest/gtest.h>

#include "matmul/algorithm_registry.hpp"
#include "util/rng.hpp"

namespace camb::mm {
namespace {

using camb::core::Shape;

class RandomSweep : public ::testing::TestWithParam<int> {};

TEST_P(RandomSweep, EveryAlgorithmEveryInvariant) {
  camb::Rng rng(0x57E55, static_cast<std::uint64_t>(GetParam()));
  const Shape shape{rng.range(1, 40), rng.range(1, 40), rng.range(1, 40)};
  // Machine sizes that give every algorithm a chance to be applicable.
  const i64 candidates[] = {1, 2, 3, 4, 6, 8, 9, 12, 16, 25};
  const i64 P = candidates[rng.below(10)];
  for (const auto& algorithm : algorithm_registry()) {
    if (!algorithm.supports(shape, P)) continue;
    const RunReport report = algorithm.run(shape, P, /*verify=*/true);
    EXPECT_LE(report.max_abs_error, 1e-9)
        << algorithm.name << " shape=(" << shape.n1 << "," << shape.n2 << ","
        << shape.n3 << ") P=" << P;
    EXPECT_EQ(report.measured_critical_recv, report.predicted_words())
        << algorithm.name << " shape=(" << shape.n1 << "," << shape.n2 << ","
        << shape.n3 << ") P=" << P;
    EXPECT_GE(static_cast<double>(report.measured_critical_recv) + 1e-6,
              report.lower_bound_words)
        << algorithm.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSweep, ::testing::Range(0, 80));

TEST(Registry, NamesAreUniqueAndLookupWorks) {
  const auto& algorithms = algorithm_registry();
  ASSERT_GE(algorithms.size(), 7u);
  for (std::size_t i = 0; i < algorithms.size(); ++i) {
    for (std::size_t j = i + 1; j < algorithms.size(); ++j) {
      EXPECT_NE(algorithms[i].name, algorithms[j].name);
    }
    EXPECT_EQ(&algorithm_by_name(algorithms[i].name), &algorithms[i]);
  }
  EXPECT_THROW(algorithm_by_name("does_not_exist"), Error);
}

TEST(Registry, SupportPredicatesMatchReality) {
  const Shape shape{12, 12, 12};
  EXPECT_TRUE(algorithm_by_name("grid3d_optimal").supports(shape, 7));
  EXPECT_TRUE(algorithm_by_name("summa").supports(shape, 9));
  EXPECT_FALSE(algorithm_by_name("summa").supports(shape, 8));
  EXPECT_TRUE(algorithm_by_name("alg25d").supports(shape, 8));    // 2x2x2
  EXPECT_FALSE(algorithm_by_name("alg25d").supports(shape, 6));
}

TEST(Registry, BandwidthOptimalFlagsAttainTheBoundOnOptimalConfigs) {
  // On a divisible optimal configuration, every bandwidth_optimal algorithm
  // measures exactly the bound; the others exceed it.
  const Shape shape{96, 96, 96};
  const i64 P = 64;
  const auto bound =
      camb::core::memory_independent_bound(shape, static_cast<double>(P));
  for (const auto& algorithm : algorithm_registry()) {
    if (!algorithm.supports(shape, P)) continue;
    const RunReport report = algorithm.run(shape, P, false);
    if (algorithm.bandwidth_optimal) {
      EXPECT_NEAR(static_cast<double>(report.measured_critical_recv),
                  bound.words, 1e-9 * bound.words)
          << algorithm.name;
    } else {
      EXPECT_GT(static_cast<double>(report.measured_critical_recv),
                bound.words)
          << algorithm.name;
    }
  }
}

TEST(AgarwalVariant, SameBandwidthAsAlg1MoreMessages) {
  // The §5.1 comparison, measured end to end: identical received words,
  // strictly more messages for p2 > 2 (p2 - 1 vs ceil(log2 p2) rounds).
  const Shape shape{24, 32, 16};
  const camb::core::Grid3 grid{2, 8, 2};
  const auto alg1 = run_grid3d(Grid3dConfig{shape, grid}, true);
  const auto agarwal =
      run_grid3d_agarwal(Grid3dAgarwalConfig{shape, grid}, true);
  EXPECT_LE(alg1.max_abs_error, 1e-10);
  EXPECT_LE(agarwal.max_abs_error, 1e-10);
  EXPECT_EQ(agarwal.measured_critical_recv, alg1.measured_critical_recv);
  EXPECT_GT(agarwal.measured_critical_messages,
            alg1.measured_critical_messages);
}

TEST(AgarwalVariant, BruckAlltoallTradesBandwidthForLatency) {
  const Shape shape{24, 32, 16};
  const camb::core::Grid3 grid{2, 8, 2};
  Grid3dAgarwalConfig pairwise{shape, grid};
  Grid3dAgarwalConfig bruck{shape, grid, coll::AllgatherAlgo::kAuto,
                            coll::AlltoallAlgo::kBruck};
  const auto pw = run_grid3d_agarwal(pairwise, true);
  const auto br = run_grid3d_agarwal(bruck, true);
  EXPECT_LE(br.max_abs_error, 1e-10);
  EXPECT_EQ(pw.measured_critical_recv, pw.predicted_words());
  EXPECT_EQ(br.measured_critical_recv, br.predicted_words());
  EXPECT_GT(br.measured_critical_recv, pw.measured_critical_recv);
  EXPECT_LT(br.measured_critical_messages, pw.measured_critical_messages);
}

}  // namespace
}  // namespace camb::mm
