// Unit tests for util/matrix.hpp and the serial reference multiplication.
#include "util/matrix.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace camb {
namespace {

TEST(Matrix, ConstructionAndIndexing) {
  MatrixD m(3, 4, 1.5);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  EXPECT_EQ(m.size(), 12);
  EXPECT_DOUBLE_EQ(m(2, 3), 1.5);
  m(1, 2) = -2.0;
  EXPECT_DOUBLE_EQ(m(1, 2), -2.0);
}

TEST(Matrix, BlockRoundTrip) {
  MatrixD m(5, 6);
  m.fill_indexed(0, 0);
  MatrixD blk = m.block(1, 2, 3, 4);
  EXPECT_EQ(blk.rows(), 3);
  EXPECT_EQ(blk.cols(), 4);
  for (i64 i = 0; i < 3; ++i) {
    for (i64 j = 0; j < 4; ++j) EXPECT_DOUBLE_EQ(blk(i, j), m(1 + i, 2 + j));
  }
  MatrixD target(5, 6, 0.0);
  target.set_block(1, 2, blk);
  EXPECT_DOUBLE_EQ(target(1, 2), m(1, 2));
  EXPECT_DOUBLE_EQ(target(3, 5), m(3, 5));
  EXPECT_DOUBLE_EQ(target(0, 0), 0.0);
}

TEST(Matrix, BlockOutOfRangeThrows) {
  MatrixD m(3, 3);
  EXPECT_THROW(m.block(2, 2, 2, 2), Error);
  MatrixD src(2, 2);
  EXPECT_THROW(m.set_block(2, 2, src), Error);
}

TEST(Matrix, AddBlockAccumulates) {
  MatrixD m(2, 2, 1.0);
  MatrixD inc(2, 2, 0.5);
  m.add_block(0, 0, inc);
  EXPECT_DOUBLE_EQ(m(0, 0), 1.5);
  EXPECT_DOUBLE_EQ(m(1, 1), 1.5);
}

TEST(Matrix, FillIndexedIsPositionDeterministic) {
  MatrixD a(4, 4), b(4, 4);
  a.fill_indexed(0, 0);
  b.fill_indexed(0, 0);
  EXPECT_TRUE(a == b);
  // A shifted fill matches the corresponding region of a larger fill.
  MatrixD big(8, 8);
  big.fill_indexed(0, 0);
  MatrixD shifted(4, 4);
  shifted.fill_indexed(2, 3);
  for (i64 i = 0; i < 4; ++i) {
    for (i64 j = 0; j < 4; ++j) {
      EXPECT_DOUBLE_EQ(shifted(i, j), big(2 + i, 3 + j));
    }
  }
}

TEST(Matrix, FillIndexedValuesBounded) {
  MatrixD m(16, 16);
  m.fill_indexed(0, 0);
  for (i64 i = 0; i < 16; ++i) {
    for (i64 j = 0; j < 16; ++j) {
      EXPECT_GE(m(i, j), -0.5);
      EXPECT_LT(m(i, j), 0.5);
    }
  }
}

TEST(Matrix, MaxAbsDiff) {
  MatrixD a(2, 2, 1.0), b(2, 2, 1.0);
  EXPECT_DOUBLE_EQ(a.max_abs_diff(b), 0.0);
  b(1, 0) = 3.0;
  EXPECT_DOUBLE_EQ(a.max_abs_diff(b), 2.0);
}

TEST(MatmulReference, KnownProduct) {
  MatrixD a(2, 3), b(3, 2);
  // a = [1 2 3; 4 5 6], b = [7 8; 9 10; 11 12]
  double av[] = {1, 2, 3, 4, 5, 6}, bv[] = {7, 8, 9, 10, 11, 12};
  std::copy(av, av + 6, a.data());
  std::copy(bv, bv + 6, b.data());
  MatrixD c = matmul_reference(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 58);
  EXPECT_DOUBLE_EQ(c(0, 1), 64);
  EXPECT_DOUBLE_EQ(c(1, 0), 139);
  EXPECT_DOUBLE_EQ(c(1, 1), 154);
}

TEST(MatmulReference, IdentityIsNeutral) {
  MatrixD a(3, 3);
  a.fill_indexed(0, 0);
  MatrixD eye(3, 3);
  for (i64 i = 0; i < 3; ++i) eye(i, i) = 1.0;
  EXPECT_LE(matmul_reference(a, eye).max_abs_diff(a), 0.0);
  EXPECT_LE(matmul_reference(eye, a).max_abs_diff(a), 0.0);
}

TEST(MatmulReference, ShapeMismatchThrows) {
  MatrixD a(2, 3), b(4, 2);
  EXPECT_THROW(matmul_reference(a, b), Error);
}

TEST(Rng, DeterministicStreams) {
  Rng r1(7, 0), r2(7, 0), r3(7, 1);
  EXPECT_EQ(r1(), r2());
  EXPECT_NE(r1(), r3());  // different streams diverge
}

TEST(Rng, UniformInRange) {
  Rng rng(123);
  for (int t = 0; t < 1000; ++t) {
    const double u = rng.uniform(-2.0, 5.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, RangeInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int t = 0; t < 2000; ++t) {
    const auto v = rng.range(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    saw_lo |= (v == 2);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

}  // namespace
}  // namespace camb
