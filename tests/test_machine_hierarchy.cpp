// Unit tests for machine/hierarchy.hpp — node-level traffic analysis and the
// node-level form of the lower bound.
#include "machine/hierarchy.hpp"

#include <gtest/gtest.h>

#include "core/bounds.hpp"
#include "machine/machine.hpp"
#include "matmul/grid3d.hpp"
#include "util/error.hpp"

namespace camb {
namespace {

using core::Grid3;
using core::Shape;

TEST(NodeMapping, BlockedAndRoundRobin) {
  const auto blocked = NodeMapping::blocked(8, 2);
  EXPECT_EQ(blocked.node_of(0), 0);
  EXPECT_EQ(blocked.node_of(3), 0);
  EXPECT_EQ(blocked.node_of(4), 1);
  const auto rr = NodeMapping::round_robin(8, 2);
  EXPECT_EQ(rr.node_of(0), 0);
  EXPECT_EQ(rr.node_of(1), 1);
  EXPECT_EQ(rr.node_of(6), 0);
  EXPECT_THROW(NodeMapping::blocked(7, 2), Error);
  EXPECT_THROW(NodeMapping::custom({0, 3}, 2), Error);
}

TEST(Hierarchy, ClassifiesIntraVsInter) {
  Machine machine(4);
  Trace& trace = machine.enable_trace();
  machine.run([&](RankCtx& ctx) {
    // 0 -> 1 (intra under blocked/2), 0 -> 2 (inter), 3 -> 2 (intra).
    if (ctx.rank() == 0) {
      ctx.send(1, 0, std::vector<double>(10));
      ctx.send(2, 0, std::vector<double>(20));
    }
    if (ctx.rank() == 3) ctx.send(2, 1, std::vector<double>(5));
    if (ctx.rank() == 1) (void)ctx.recv(0, 0);
    if (ctx.rank() == 2) {
      (void)ctx.recv(0, 0);
      (void)ctx.recv(3, 1);
    }
  });
  const auto report = analyze_hierarchy(trace, NodeMapping::blocked(4, 2));
  EXPECT_EQ(report.total_words, 35);
  EXPECT_EQ(report.intra_node_words, 15);
  EXPECT_EQ(report.inter_node_words, 20);
  EXPECT_EQ(report.max_node_ingress_words, 20);  // node 1 receives 20
  EXPECT_EQ(report.max_node_egress_words, 20);   // node 0 sends 20
}

TEST(Hierarchy, FiberAlignedMappingKeepsCollectivesInside) {
  // Algorithm 1 on a 2x2x2 grid with 2 nodes of 4 ranks: the blocked mapping
  // puts each (q1, *, *) slab on one node, so the A All-Gather (p3 fibers)
  // and C Reduce-Scatter (p2 fibers) stay entirely intra-node; only the B
  // All-Gather (p1 fibers) crosses.  Round-robin groups by q3 instead, which
  // sends the (much larger) A traffic across nodes — the shape is chosen
  // asymmetric (A block >> B block) so the mappings measurably differ.
  const Shape shape{32, 16, 8};
  const Grid3 grid{2, 2, 2};
  Machine machine(8);
  Trace& trace = machine.enable_trace();
  mm::Grid3dConfig cfg{shape, grid};
  machine.run([&](RankCtx& ctx) { (void)mm::grid3d_rank(ctx, cfg); });

  const auto blocked = analyze_hierarchy(trace, NodeMapping::blocked(8, 2));
  const auto rr = analyze_hierarchy(trace, NodeMapping::round_robin(8, 2));
  EXPECT_EQ(blocked.total_words, rr.total_words);
  EXPECT_LT(blocked.inter_node_words, rr.inter_node_words);
  // Exactly the B traffic crosses under the blocked mapping.
  double b_words = 0;
  for (const auto& event : trace.events_in_phase(mm::kPhaseAllgatherB)) {
    b_words += event.words();
  }
  EXPECT_EQ(blocked.inter_node_words, b_words);
}

TEST(Hierarchy, NodeLevelBoundGovernsIngress) {
  // Treat each node as one processor with P' = nodes: Theorem 3 at P' lower-
  // bounds the max node ingress (the node must still acquire the data its
  // cores' combined computation needs beyond what it holds).
  const Shape shape{24, 24, 24};
  const Grid3 grid{2, 2, 2};
  Machine machine(8);
  Trace& trace = machine.enable_trace();
  mm::Grid3dConfig cfg{shape, grid};
  machine.run([&](RankCtx& ctx) { (void)mm::grid3d_rank(ctx, cfg); });
  for (int nodes : {2, 4}) {
    const auto report =
        analyze_hierarchy(trace, NodeMapping::blocked(8, nodes));
    const auto bound = core::memory_independent_bound(
        shape, static_cast<double>(nodes));
    EXPECT_GE(static_cast<double>(report.max_node_ingress_words) + 1e-6,
              bound.words)
        << "nodes=" << nodes;
  }
}

TEST(Hierarchy, SizeMismatchThrows) {
  Trace trace(4);
  EXPECT_THROW(analyze_hierarchy(trace, NodeMapping::blocked(8, 2)), Error);
}

}  // namespace
}  // namespace camb
