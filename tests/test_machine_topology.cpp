// Unit tests for machine/topology.hpp — routing properties and contention
// analysis over traces.
#include "machine/topology.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "collectives/allgather.hpp"
#include "machine/machine.hpp"
#include "util/error.hpp"

namespace camb {
namespace {

void check_route_invariants(const Topology& topo) {
  const int p = topo.nprocs();
  for (int a = 0; a < p; ++a) {
    for (int b = 0; b < p; ++b) {
      const auto links = topo.route(a, b);
      if (a == b) {
        EXPECT_TRUE(links.empty());
        continue;
      }
      // Route is a connected walk from a to b.
      ASSERT_FALSE(links.empty());
      EXPECT_EQ(links.front().first, a);
      EXPECT_EQ(links.back().second, b);
      for (std::size_t l = 1; l < links.size(); ++l) {
        EXPECT_EQ(links[l - 1].second, links[l].first);
      }
      // Symmetric hop counts (all implemented topologies are undirected).
      EXPECT_EQ(topo.hops(a, b), topo.hops(b, a)) << topo.name();
    }
  }
}

TEST(Topology, FullyConnectedIsOneHop) {
  FullyConnected topo(7);
  check_route_invariants(topo);
  for (int a = 0; a < 7; ++a) {
    for (int b = 0; b < 7; ++b) {
      EXPECT_EQ(topo.hops(a, b), a == b ? 0 : 1);
    }
  }
}

TEST(Topology, RingTakesTheShortWay) {
  Ring topo(8);
  check_route_invariants(topo);
  EXPECT_EQ(topo.hops(0, 1), 1);
  EXPECT_EQ(topo.hops(0, 4), 4);   // antipodal
  EXPECT_EQ(topo.hops(0, 5), 3);   // backwards is shorter
  EXPECT_EQ(topo.hops(7, 0), 1);
  // Odd ring.
  Ring odd(5);
  check_route_invariants(odd);
  EXPECT_EQ(odd.hops(0, 3), 2);
}

TEST(Topology, TorusUsesDimensionOrderedShortestPaths) {
  Torus2D topo(3, 4);
  check_route_invariants(topo);
  // (0,0) -> (2,3): Y distance min(2,1) = 1, X distance min(3,1) = 1.
  EXPECT_EQ(topo.hops(0, 2 * 4 + 3), 2);
  // Same row: pure X routing.
  EXPECT_EQ(topo.hops(0, 2), 2);
  EXPECT_EQ(topo.name(), "torus_3x4");
}

TEST(Topology, HypercubeHopsArePopcount) {
  Hypercube topo(16);
  check_route_invariants(topo);
  for (int a = 0; a < 16; ++a) {
    for (int b = 0; b < 16; ++b) {
      EXPECT_EQ(topo.hops(a, b), __builtin_popcount(a ^ b));
    }
  }
  EXPECT_THROW(Hypercube(12), Error);
}

Trace& run_allgather_traced(Machine& machine, coll::AllgatherAlgo algo,
                            i64 block) {
  Trace& trace = machine.enable_trace();
  machine.run([&](RankCtx& ctx) {
    (void)coll::allgather_equal(
        coll::Comm::world(ctx),
        std::vector<double>(static_cast<std::size_t>(block)), algo);
  });
  return trace;
}

TEST(Contention, RingAllgatherMapsPerfectlyOntoARing) {
  // The ring algorithm's messages all go to the +1 neighbour: on a physical
  // ring every message is one hop and every link carries the same load.
  const int p = 8;
  const i64 block = 16;
  Machine machine(p);
  Trace& trace = run_allgather_traced(machine, coll::AllgatherAlgo::kRing, block);
  const auto report = analyze_contention(trace, Ring(p));
  EXPECT_DOUBLE_EQ(report.mean_hops, 1.0);
  EXPECT_EQ(report.max_link_words, (p - 1) * block);  // p-1 rounds, one block each
  EXPECT_EQ(report.total_words, p * (p - 1) * block);
}

TEST(Contention, RecursiveDoublingCongestsARing) {
  // Recursive doubling's distance-4 partners must cross shared ring links:
  // strictly more hop-words and a hotter hottest link than the ring variant.
  const int p = 8;
  const i64 block = 16;
  Machine ring_machine(p), recdbl_machine(p);
  const auto ring_report = analyze_contention(
      run_allgather_traced(ring_machine, coll::AllgatherAlgo::kRing, block),
      Ring(p));
  const auto recdbl_report = analyze_contention(
      run_allgather_traced(recdbl_machine,
                           coll::AllgatherAlgo::kRecursiveDoubling, block),
      Ring(p));
  EXPECT_EQ(ring_report.total_words, recdbl_report.total_words);
  EXPECT_GT(recdbl_report.hop_words, ring_report.hop_words);
  EXPECT_GT(recdbl_report.max_link_words, ring_report.max_link_words);
}

TEST(Contention, RecursiveDoublingIsOneHopOnAHypercube) {
  // The same algorithm maps perfectly onto its natural topology.
  const int p = 8;
  Machine machine(p);
  const auto report = analyze_contention(
      run_allgather_traced(machine, coll::AllgatherAlgo::kRecursiveDoubling, 16),
      Hypercube(p));
  EXPECT_DOUBLE_EQ(report.mean_hops, 1.0);
}

TEST(Contention, FullyConnectedMatchesTheModel) {
  // On the paper's topology, hop-words == total words, no congestion beyond
  // the per-pair traffic itself.
  const int p = 6;
  Machine machine(p);
  const auto report = analyze_contention(
      run_allgather_traced(machine, coll::AllgatherAlgo::kRing, 4),
      FullyConnected(p));
  EXPECT_EQ(report.hop_words, report.total_words);
  EXPECT_DOUBLE_EQ(report.mean_hops, 1.0);
}

TEST(Contention, EmptyTraceIsZero) {
  Trace trace(4);
  const auto report = analyze_contention(trace, Ring(4));
  EXPECT_EQ(report.total_words, 0);
  EXPECT_DOUBLE_EQ(report.mean_hops, 0.0);
  EXPECT_EQ(report.max_link, (Link{-1, -1}));
}

TEST(Contention, SizeMismatchThrows) {
  Trace trace(4);
  EXPECT_THROW(analyze_contention(trace, Ring(5)), Error);
}

}  // namespace
}  // namespace camb
