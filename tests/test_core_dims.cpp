// Unit tests for core/dims.hpp: shape sorting and face/matrix mapping.
#include "core/dims.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace camb::core {
namespace {

TEST(Shape, SizesAndFlops) {
  Shape s{4, 5, 6};
  EXPECT_EQ(s.flops(), 120);
  EXPECT_EQ(s.size_a(), 20);
  EXPECT_EQ(s.size_b(), 30);
  EXPECT_EQ(s.size_c(), 24);
  EXPECT_EQ(s.total_matrix_words(), 74);
}

TEST(SortDims, AllPermutations) {
  const i64 vals[3] = {10, 20, 30};
  int perm[6][3] = {{0, 1, 2}, {0, 2, 1}, {1, 0, 2},
                    {1, 2, 0}, {2, 0, 1}, {2, 1, 0}};
  for (auto& p : perm) {
    Shape s{vals[p[0]], vals[p[1]], vals[p[2]]};
    const SortedDims d = sort_dims(s);
    EXPECT_EQ(d.m, 30);
    EXPECT_EQ(d.n, 20);
    EXPECT_EQ(d.k, 10);
    // axis_of must invert correctly.
    const std::array<i64, 3> raw = {s.n1, s.n2, s.n3};
    EXPECT_EQ(raw[static_cast<std::size_t>(d.axis_of[0])], 30);
    EXPECT_EQ(raw[static_cast<std::size_t>(d.axis_of[1])], 20);
    EXPECT_EQ(raw[static_cast<std::size_t>(d.axis_of[2])], 10);
  }
}

TEST(SortDims, TiesAreStable) {
  const SortedDims d = sort_dims(Shape{5, 5, 5});
  EXPECT_EQ(d.axis_of, (std::array<int, 3>{0, 1, 2}));
}

TEST(SortDims, FaceSizes) {
  // Paper's Figure 2 shape: A is 9600x2400, B is 2400x600.
  const SortedDims d = sort_dims(Shape{9600, 2400, 600});
  EXPECT_EQ(d.m, 9600);
  EXPECT_EQ(d.n, 2400);
  EXPECT_EQ(d.k, 600);
  const auto faces = d.face_sizes();
  EXPECT_EQ(faces[0], 2400 * 600);    // nk — the smallest face (matrix B)
  EXPECT_EQ(faces[1], 9600 * 600);    // mk — matrix C
  EXPECT_EQ(faces[2], 9600 * 2400);   // mn — matrix A
}

TEST(SortDims, MatrixRoles) {
  // n1 = 9600 is m; the matrix not involving n1 is B, so B is the nk face.
  const SortedDims d = sort_dims(Shape{9600, 2400, 600});
  EXPECT_EQ(d.small_matrix(), MatrixId::B);
  EXPECT_EQ(d.mid_matrix(), MatrixId::C);   // n2=2400 median; C omits n2
  EXPECT_EQ(d.large_matrix(), MatrixId::A); // n3=600 min; A omits n3
}

TEST(SortDims, MatrixRolesOtherOrientation) {
  // n2 largest: A = n1×n2 involves it, C = n1×n3 does not involve n2.
  const SortedDims d = sort_dims(Shape{10, 100, 50});
  EXPECT_EQ(d.m, 100);
  EXPECT_EQ(d.small_matrix(), MatrixId::C);
}

TEST(MatrixWithoutAxis, Mapping) {
  EXPECT_EQ(matrix_without_axis(0), MatrixId::B);
  EXPECT_EQ(matrix_without_axis(1), MatrixId::C);
  EXPECT_EQ(matrix_without_axis(2), MatrixId::A);
  EXPECT_THROW(matrix_without_axis(3), Error);
}

TEST(MatrixSize, ByRole) {
  Shape s{4, 5, 6};
  EXPECT_EQ(matrix_size(s, MatrixId::A), 20);
  EXPECT_EQ(matrix_size(s, MatrixId::B), 30);
  EXPECT_EQ(matrix_size(s, MatrixId::C), 24);
}

TEST(MatrixFaceConsistency, RolesPartitionFaces) {
  // For any shape, the three roles cover {A, B, C} exactly once, and their
  // sizes are {nk, mk, mn}.
  for (const Shape& s : {Shape{3, 7, 5}, Shape{8, 2, 4}, Shape{6, 6, 2}}) {
    const SortedDims d = sort_dims(s);
    const MatrixId small = d.small_matrix(), mid = d.mid_matrix(),
                   large = d.large_matrix();
    EXPECT_NE(small, mid);
    EXPECT_NE(mid, large);
    EXPECT_NE(small, large);
    EXPECT_EQ(matrix_size(s, small), d.n * d.k);
    EXPECT_EQ(matrix_size(s, mid), d.m * d.k);
    EXPECT_EQ(matrix_size(s, large), d.m * d.n);
  }
}

TEST(SortDims, RejectsDegenerate) {
  EXPECT_THROW(sort_dims(Shape{0, 1, 1}), Error);
}

TEST(ToString, MatrixNames) {
  EXPECT_EQ(to_string(MatrixId::A), "A");
  EXPECT_EQ(to_string(MatrixId::B), "B");
  EXPECT_EQ(to_string(MatrixId::C), "C");
}

}  // namespace
}  // namespace camb::core
