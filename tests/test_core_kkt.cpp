// Unit tests for core/kkt.hpp: the KKT certificate of Lemma 2's solution and
// the convexity probes of §3.2.
#include "core/kkt.hpp"

#include <gtest/gtest.h>

namespace camb::core {
namespace {

TEST(ConstraintValues, FeasibleAndInfeasiblePoints) {
  const Lemma2Problem prob{6, 4, 2, 2};
  // Floors: (4, 6, 12); product floor: (24)^2 = 576.
  const auto at_floors = constraint_values(prob, {4, 6, 12});
  // 4*6*12 = 288 < 576: product constraint violated at the floors.
  EXPECT_GT(at_floors[0], 0);
  EXPECT_DOUBLE_EQ(at_floors[1], 0);
  EXPECT_DOUBLE_EQ(at_floors[2], 0);
  EXPECT_DOUBLE_EQ(at_floors[3], 0);
  const auto feasible = constraint_values(prob, {8, 9, 12});
  for (double g : feasible) EXPECT_LE(g, 0);
}

TEST(ConstraintJacobian, MatchesPaperForm) {
  const auto jac = constraint_jacobian({2, 3, 5});
  EXPECT_DOUBLE_EQ(jac[0][0], -15);
  EXPECT_DOUBLE_EQ(jac[0][1], -10);
  EXPECT_DOUBLE_EQ(jac[0][2], -6);
  EXPECT_DOUBLE_EQ(jac[1][0], -1);
  EXPECT_DOUBLE_EQ(jac[2][1], -1);
  EXPECT_DOUBLE_EQ(jac[3][2], -1);
  EXPECT_DOUBLE_EQ(jac[1][1], 0);
}

TEST(VerifyKkt, AnalyticSolutionCertifiedInAllCases) {
  // The dual variables published in the paper's proof must satisfy all four
  // KKT conditions in each regime.
  for (double P : {1.0, 2.0, 3.9, 4.0, 5.0, 36.0, 63.9, 64.0, 100.0, 512.0,
                   1e6}) {
    const Lemma2Problem prob{9600, 2400, 600, P};
    const auto sol = solve_analytic(prob);
    const auto report = verify_kkt(prob, sol.x, sol.mu, 1e-8);
    EXPECT_TRUE(report.ok())
        << "P=" << P << " primal=" << report.primal_feasible
        << " dual=" << report.dual_feasible << " stat=" << report.stationary
        << " comp=" << report.complementary
        << " worst=" << report.worst_violation;
  }
}

TEST(VerifyKkt, RejectsWrongPrimal) {
  const Lemma2Problem prob{9600, 2400, 600, 36};
  const auto sol = solve_analytic(prob);
  auto x = sol.x;
  x[0] *= 0.5;  // violates the product constraint or a floor
  const auto report = verify_kkt(prob, x, sol.mu);
  EXPECT_FALSE(report.ok());
}

TEST(VerifyKkt, RejectsWrongDual) {
  const Lemma2Problem prob{9600, 2400, 600, 36};
  const auto sol = solve_analytic(prob);
  auto mu = sol.mu;
  mu[0] = 0;  // stationarity can no longer hold
  EXPECT_FALSE(verify_kkt(prob, sol.x, mu).stationary);
  mu = sol.mu;
  mu[1] = -1;  // dual infeasible
  EXPECT_FALSE(verify_kkt(prob, sol.x, mu).dual_feasible);
}

TEST(VerifyKkt, RejectsSlackConstraintWithPositiveMultiplier) {
  const Lemma2Problem prob{9600, 2400, 600, 512};  // case 3: floors slack
  const auto sol = solve_analytic(prob);
  auto mu = sol.mu;
  mu[1] = 0.5;  // floor 1 is slack in case 3, so complementary slackness fails
  EXPECT_FALSE(verify_kkt(prob, sol.x, mu).complementary);
}

TEST(ProbeQuasiconvexity, G0PassesOnPositiveOctant) {
  // Lemma 5: g0 = L - x1 x2 x3 is quasiconvex on the positive octant.
  EXPECT_TRUE(probe_quasiconvexity_g0(10.0, 20000, 1));
  EXPECT_TRUE(probe_quasiconvexity_g0(1e6, 20000, 2));
  EXPECT_TRUE(probe_quasiconvexity_g0(0.0, 20000, 3));
}

TEST(ProbeConvexity, ObjectivePasses) {
  EXPECT_TRUE(probe_convexity_objective(20000, 4));
}

TEST(VerifyKkt, EnumeratedSolutionAlsoAtAnalyticObjective) {
  // Cross-solver consistency stated through the dual certificate: the
  // enumerated primal point must satisfy primal feasibility and achieve the
  // certified objective.
  for (double P : {2.0, 36.0, 512.0}) {
    const Lemma2Problem prob{9600, 2400, 600, P};
    const auto sol = solve_analytic(prob);
    const auto enumerated = solve_enumerate(prob);
    const auto g = constraint_values(prob, enumerated);
    for (double gi : g) EXPECT_LE(gi, 1e-6 * prob.product_floor());
    const double obj = enumerated[0] + enumerated[1] + enumerated[2];
    EXPECT_NEAR(obj, sol.objective, 1e-9 * sol.objective);
  }
}

}  // namespace
}  // namespace camb::core
