// The scalar-substrate acceptance battery: every registry algorithm carried
// end-to-end over non-double scalars, with the word accounting checked
// against the closed-form predictions at each dtype's element width.
//
// The headline invariant is exactness: measured critical-path words must
// equal predicted elements × sizeof(elem)/8 with NO tolerance — f32 runs
// land on exact half-words (the byte-canonical counters make halves
// representable), i64 and kahan on exact multiples.  Around it: the i64
// ABFT leg (bit-exact checksum reconstruction in native integer arithmetic,
// no integer-valued-double workaround), f32 Freivalds at double precision,
// the kahan smoke, the CLI-facing rejection path for unknown dtype names,
// and checkpointed runs at every dtype through the registry dispatch.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/dims.hpp"
#include "matmul/algorithm_registry.hpp"
#include "matmul/runner.hpp"
#include "util/error.hpp"
#include "util/scalar.hpp"

namespace camb {
namespace {

using core::Shape;
using namespace camb::mm;

const Shape kShape{48, 40, 56};
const std::vector<i64> kProcs = {8, 16, 27, 36, 64};

/// Every registered algorithm, at every supported P, under f32 and i64:
/// verified against the per-dtype reference, with measured critical-path
/// words exactly predicted × width.  Seed-swept so the fill stream (which
/// differs per dtype through ScalarTraits::from_unit) is not a constant.
TEST(DtypeSweep, AllAlgorithmsExactWordsAtEveryWidth) {
  const std::vector<DType> dtypes = {DType::kF32, DType::kI64};
  const std::vector<std::uint64_t> seeds = {5, 11};
  int runs = 0;
  for (const auto& algo : algorithm_registry()) {
    for (i64 p : kProcs) {
      if (!algo.supports(kShape, p)) continue;
      for (DType dtype : dtypes) {
        for (std::uint64_t seed : seeds) {
          RunOptions opts = RunOptions::verified(VerifyMode::kReference);
          opts.perturb.master_seed = seed;
          opts.dtype = dtype;
          const RunReport report = algo.run_opts(kShape, p, opts);
          const std::string label = std::string(algo.name) + "~" +
                                    dtype_name(dtype) + " P=" +
                                    std::to_string(p) + " seed=" +
                                    std::to_string(seed);
          ASSERT_TRUE(report.verified) << label;
          EXPECT_EQ(report.dtype, dtype) << label;
          EXPECT_EQ(report.element_bytes, dtype_elem_bytes(dtype)) << label;
          const double tol = dtype == DType::kI64 ? 0.0 : 1e-3;
          EXPECT_LE(report.max_abs_error, tol) << label;
          if (report.predicted_critical_recv >= 0) {
            // The acceptance bar: exact equality, no rounding fudge.  The
            // predictor counts elements; the wire counts bytes; the bridge
            // is sizeof(elem)/8 and nothing else.
            EXPECT_EQ(report.measured_critical_recv, report.predicted_words())
                << label;
          }
          ++runs;
        }
      }
    }
  }
  EXPECT_GT(runs, 60) << "sweep degenerated: registry or supports() shrank";
}

/// f32 moves exactly half the words f64 moves, run for run — the sharpest
/// statement of width-proportional accounting (and of the byte-canonical
/// counters: 4-byte elements land on representable half-words).
TEST(DtypeSweep, F32MovesExactlyHalfTheWordsOfF64) {
  for (const char* name : {"grid3d_optimal", "summa", "cannon", "carma"}) {
    const auto& algo = algorithm_by_name(name);
    for (i64 p : kProcs) {
      if (!algo.supports(kShape, p)) continue;
      RunOptions opts = RunOptions::verified(VerifyMode::kNone);
      const RunReport f64 = algo.run_opts(kShape, p, opts);
      opts.dtype = DType::kF32;
      const RunReport f32 = algo.run_opts(kShape, p, opts);
      const std::string label = std::string(name) + " P=" + std::to_string(p);
      EXPECT_EQ(f32.measured_critical_recv, f64.measured_critical_recv / 2.0)
          << label;
      EXPECT_EQ(f32.total_network_words, f64.total_network_words / 2.0)
          << label;
      // The element-count predictor is dtype-independent by design.
      EXPECT_EQ(f32.predicted_critical_recv, f64.predicted_critical_recv)
          << label;
      // Theorem 3's bound scales by the same width factor.
      EXPECT_EQ(f32.lower_bound_words, f64.lower_bound_words / 2.0) << label;
    }
  }
}

/// The kahan accumulator is a first-class scalar: 16-byte elements, double
/// the f64 word traffic, and a verified (reference-compared) result.
TEST(DtypeSweep, KahanSmoke) {
  const auto& algo = algorithm_by_name("summa");
  RunOptions opts = RunOptions::verified(VerifyMode::kReference);
  opts.dtype = DType::kKahan;
  const RunReport report = algo.run_opts(kShape, 16, opts);
  ASSERT_TRUE(report.verified);
  EXPECT_LT(report.max_abs_error, 1e-12);
  EXPECT_EQ(report.element_bytes, 16);
  EXPECT_EQ(report.measured_critical_recv, report.predicted_words());
  opts.dtype = DType::kF64;
  const RunReport f64 = algo.run_opts(kShape, 16, opts);
  EXPECT_EQ(report.measured_critical_recv, 2.0 * f64.measured_critical_recv);
}

// ---------------------------------------------------------------------------
// ABFT at i64: bit-exact reconstruction in native integer arithmetic.

/// summa_abft under i64 memory SDC: every injected flip detected; single
/// errors localized and repaired to the clean run's exact bits.  Integer
/// checksum sums never round, so this needs no integer-valued-double
/// workaround — the dtype IS the workaround, retired.
TEST(DtypeAbft, SummaI64MemSdcBitExactRepair) {
  const Shape shape{18, 18, 18};
  const auto& algo = algorithm_by_name("summa_abft");
  RunOptions base = RunOptions::verified(VerifyMode::kReference);
  base.dtype = DType::kI64;
  const RunReport clean = algo.run_opts(shape, 9, base);
  ASSERT_TRUE(clean.verified);
  EXPECT_EQ(clean.max_abs_error, 0.0) << "i64 ABFT must verify exactly";

  int single_corrected = 0;
  for (int seed = 1; seed <= 24; ++seed) {
    RunOptions opts = base;
    opts.sdc.mem_rate = 0.12;
    opts.sdc.sdc_seed_override = static_cast<std::uint64_t>(seed);
    const RunReport report = algo.run_opts(shape, 9, opts);
    const std::string label = "summa_abft~i64 mem seed=" +
                              std::to_string(seed) + " " +
                              report.corruption.summary();
    EXPECT_EQ(report.corruption.detected_by_checksums,
              report.corruption.injected_mem_flips)
        << label;
    if (report.corruption.injected_mem_flips == 1) {
      EXPECT_EQ(report.corruption.corrected_by_abft, 1) << label;
      EXPECT_EQ(report.corruption.escaped, 0) << label;
      EXPECT_EQ(report.output_hash, clean.output_hash) << label;
      EXPECT_EQ(report.max_abs_error, 0.0) << label;
      ++single_corrected;
    }
  }
  EXPECT_GT(single_corrected, 0) << "no seed produced exactly one flip";
}

/// grid3d_abft at i64: per-fiber parity reconstruction, same exactness bar.
TEST(DtypeAbft, Grid3dI64MemSdcBitExactRepair) {
  const Shape shape{16, 16, 16};
  const auto& algo = algorithm_by_name("grid3d_abft");
  RunOptions base = RunOptions::verified(VerifyMode::kReference);
  base.dtype = DType::kI64;
  const RunReport clean = algo.run_opts(shape, 8, base);
  ASSERT_TRUE(clean.verified);
  EXPECT_EQ(clean.max_abs_error, 0.0);

  int corrected_runs = 0;
  for (int seed = 1; seed <= 24; ++seed) {
    RunOptions opts = base;
    opts.sdc.mem_rate = 0.3;
    opts.sdc.sdc_seed_override = static_cast<std::uint64_t>(seed);
    const RunReport report = algo.run_opts(shape, 8, opts);
    const std::string label = "grid3d_abft~i64 mem seed=" +
                              std::to_string(seed) + " " +
                              report.corruption.summary();
    EXPECT_EQ(report.corruption.detected_by_checksums,
              report.corruption.injected_mem_flips)
        << label;
    EXPECT_EQ(report.corruption.escaped, 0) << label;
    if (report.corruption.injected_mem_flips > 0) {
      EXPECT_EQ(report.corruption.corrected_by_abft,
                report.corruption.injected_mem_flips)
          << label;
      EXPECT_EQ(report.output_hash, clean.output_hash) << label;
      EXPECT_EQ(report.max_abs_error, 0.0) << label;
      ++corrected_runs;
    }
  }
  EXPECT_GT(corrected_runs, 0) << "no seed injected a flip at rate 0.3";
}

// ---------------------------------------------------------------------------
// Verification paths per dtype.

/// f32 results pass Freivalds run at double precision: the residual is
/// computed by widening every operand, so single-precision rounding shows
/// up as a small (bounded) residual, not a spurious rejection.
TEST(DtypeVerify, F32PassesFreivaldsAtDouble) {
  for (const char* name : {"summa", "grid3d_optimal"}) {
    const auto& algo = algorithm_by_name(name);
    RunOptions opts = RunOptions::verified(VerifyMode::kFreivalds);
    opts.dtype = DType::kF32;
    const RunReport report = algo.run_opts(kShape, 16, opts);
    ASSERT_TRUE(report.verified) << name;
    EXPECT_LT(report.max_abs_error, 1e-3) << name;
  }
}

/// i64 under Freivalds: exact arithmetic means an exactly-zero residual.
TEST(DtypeVerify, I64FreivaldsResidualIsZero) {
  const auto& algo = algorithm_by_name("summa");
  RunOptions opts = RunOptions::verified(VerifyMode::kFreivalds);
  opts.dtype = DType::kI64;
  const RunReport report = algo.run_opts(kShape, 16, opts);
  ASSERT_TRUE(report.verified);
  EXPECT_EQ(report.max_abs_error, 0.0);
}

// ---------------------------------------------------------------------------
// Rejection paths: bad specs fail fast with named errors.

TEST(DtypeErrors, UnknownDtypeNameListsValidSet) {
  try {
    parse_dtype("f16");
    FAIL() << "parse_dtype accepted an unknown name";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown dtype 'f16'"), std::string::npos) << what;
    EXPECT_NE(what.find("f64, f32, i64, kahan"), std::string::npos) << what;
  }
}

/// Checkpoint/rollback snapshots travel as homogeneous payloads of the run
/// scalar, so the registry path must accept every dtype — the f64-only gate
/// this suite used to pin is gone.  (The bit-identical recovery legs live
/// in test_checkpoint_recovery; this pins the registry dispatch.)
TEST(DtypeErrors, CheckpointRunsAtEveryDtype) {
  const auto& algo = algorithm_by_name("summa");
  for (DType dt :
       {DType::kF64, DType::kF32, DType::kI64, DType::kKahan}) {
    RunOptions opts = RunOptions::verified(VerifyMode::kReference);
    opts.checkpoint.interval = 1;
    opts.dtype = dt;
    const RunReport report = algo.run_opts(kShape, 16, opts);
    EXPECT_TRUE(report.verified) << dtype_name(dt);
  }
}

}  // namespace
}  // namespace camb
