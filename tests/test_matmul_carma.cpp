// Unit tests for matmul/carma.hpp — the Demmel et al. 2013 recursive
// algorithm: correctness, exact accounting, split-rule behaviour, and its
// constant-factor standing relative to Algorithm 1 and the bound.
#include "matmul/carma.hpp"

#include <gtest/gtest.h>

#include "core/grid.hpp"
#include "matmul/runner.hpp"

namespace camb::mm {
namespace {

using camb::core::Shape;

void expect_correct_and_counted(const Shape& shape, int levels) {
  ASSERT_TRUE(carma_supported(shape, levels))
      << shape.n1 << "x" << shape.n2 << "x" << shape.n3 << " levels=" << levels;
  const RunReport report = run_carma(CarmaConfig{shape, levels}, true);
  EXPECT_LE(report.max_abs_error, 1e-10)
      << shape.n1 << "x" << shape.n2 << "x" << shape.n3 << " levels=" << levels;
  EXPECT_EQ(report.measured_critical_recv, report.predicted_words());
  EXPECT_GE(static_cast<double>(report.measured_critical_recv) + 1e-6,
            report.lower_bound_words);
}

TEST(Carma, SingleRankNoComm) {
  const RunReport report = run_carma(CarmaConfig{Shape{8, 6, 4}, 0}, true);
  EXPECT_LE(report.max_abs_error, 1e-12);
  EXPECT_EQ(report.total_network_words, 0);
}

TEST(Carma, SplitSequenceFollowsLargestDimension) {
  // 64x32x16: splits M (64->32), then M/K tie -> M (32->16)? The rule is
  // r >= k && r >= c -> M: after M, (32,32,16): tie r==k -> M again; then
  // (16,32,16): K; then (16,16,16): M.
  const auto seq = carma_split_sequence(CarmaConfig{Shape{64, 32, 16}, 4});
  EXPECT_EQ(seq, (std::vector<char>{'M', 'M', 'K', 'M'}));
  // All-square: M, then the tree stays as square as possible.
  const auto sq = carma_split_sequence(CarmaConfig{Shape{32, 32, 32}, 3});
  EXPECT_EQ(sq, (std::vector<char>{'M', 'K', 'N'}));
}

TEST(Carma, CorrectAcrossShapesAndLevels) {
  expect_correct_and_counted(Shape{16, 16, 16}, 1);
  expect_correct_and_counted(Shape{16, 16, 16}, 2);
  expect_correct_and_counted(Shape{32, 32, 32}, 3);
  expect_correct_and_counted(Shape{64, 32, 16}, 3);
  expect_correct_and_counted(Shape{16, 64, 16}, 3);  // K-heavy
  expect_correct_and_counted(Shape{16, 16, 64}, 3);  // N-heavy
  expect_correct_and_counted(Shape{64, 16, 32}, 4);
  expect_correct_and_counted(Shape{128, 32, 8}, 4);  // strongly rectangular
}

TEST(Carma, SixtyFourRanks) {
  expect_correct_and_counted(Shape{64, 64, 64}, 6);
}

TEST(Carma, SupportPredicate) {
  EXPECT_TRUE(carma_supported(Shape{16, 16, 16}, 2));
  EXPECT_FALSE(carma_supported(Shape{15, 16, 16}, 2));  // 15 % 4 != 0
  EXPECT_FALSE(carma_supported(Shape{16, 16, 16}, -1));
  EXPECT_TRUE(carma_supported(Shape{2, 2, 2}, 0));
}

TEST(Carma, RespectsButDoesNotAttainTheBoundInGeneral) {
  // §6.1: Demmel et al.'s algorithm is asymptotically optimal but its
  // constants are looser; on a square problem the measured words sit above
  // the bound yet within a small constant of it.
  const Shape shape{64, 64, 64};
  const auto report = run_carma(CarmaConfig{shape, 6}, false);
  const double ratio =
      static_cast<double>(report.measured_critical_recv) /
      report.lower_bound_words;
  EXPECT_GT(ratio, 1.0);
  EXPECT_LT(ratio, 4.0);
  // Algorithm 1 on the same problem attains the bound exactly.
  const auto alg1 = run_grid3d(
      Grid3dConfig{shape, camb::core::Grid3{4, 4, 4}}, false);
  EXPECT_LT(alg1.measured_critical_recv, report.measured_critical_recv);
}

TEST(Carma, RecursionAdaptsToAspectRatio) {
  // In the 1D regime (one huge dimension), CARMA's splits all hit the big
  // dimension and communication stays near the small-face size — the same
  // qualitative behaviour the three-case bound describes.
  const Shape shape{256, 16, 16};
  const auto seq = carma_split_sequence(CarmaConfig{shape, 3});
  EXPECT_EQ(seq, (std::vector<char>{'M', 'M', 'M'}));
  const auto report = run_carma(CarmaConfig{shape, 3}, true);
  EXPECT_LE(report.max_abs_error, 1e-10);
  // M-splits replicate only B: per-rank received words stay at the scale of
  // |B| = 256 words, far below |A|/P = 4096.
  EXPECT_LE(report.measured_critical_recv, 3 * 256);
}

TEST(Carma, HoldingsPartitionC) {
  const Shape shape{16, 32, 16};
  const CarmaConfig cfg{shape, 3};
  ASSERT_TRUE(carma_supported(shape, cfg.levels));
  camb::Machine machine(8);
  std::vector<CarmaRankOutput> outputs(8);
  machine.run([&](camb::RankCtx& ctx) {
    outputs[static_cast<std::size_t>(ctx.rank())] = carma_rank(ctx, cfg);
  });
  std::vector<int> covered(static_cast<std::size_t>(16 * 16), 0);
  for (const auto& out : outputs) {
    for (i64 f = 0; f < out.holding.flat_size; ++f) {
      const i64 flat = out.holding.flat_start + f;
      const i64 i = out.holding.row0 + flat / out.holding.cols;
      const i64 j = out.holding.col0 + flat % out.holding.cols;
      covered[static_cast<std::size_t>(i * 16 + j)]++;
    }
  }
  for (int count : covered) EXPECT_EQ(count, 1);
}

}  // namespace
}  // namespace camb::mm
