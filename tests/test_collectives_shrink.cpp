// Unit tests for the shrink agreement collective: identical survivor views
// on fault-free and one-crash runs, abandoned-flag propagation, crash
// tolerance during the protocol itself, and exact α-β accounting against
// shrink_recv_words_exact.
#include "collectives/shrink.hpp"

#include <gtest/gtest.h>

#include <mutex>
#include <numeric>
#include <optional>
#include <vector>

#include "machine/faults.hpp"
#include "machine/machine.hpp"

namespace camb {
namespace {

std::vector<int> world(int n) {
  std::vector<int> group(static_cast<std::size_t>(n));
  std::iota(group.begin(), group.end(), 0);
  return group;
}

/// Collect every caller's ShrinkResult, keyed by rank, under a lock.
struct Results {
  std::mutex mutex;
  std::vector<std::optional<coll::ShrinkResult>> by_rank;
  explicit Results(int n) : by_rank(static_cast<std::size_t>(n)) {}
  void put(int rank, coll::ShrinkResult result) {
    std::lock_guard<std::mutex> lock(mutex);
    by_rank[static_cast<std::size_t>(rank)] = std::move(result);
  }
};

TEST(Shrink, FaultFreeAgreementIsTheFullGroup) {
  const int P = 8;
  Machine machine(P);
  Results results(P);
  machine.run([&](RankCtx& ctx) {
    results.put(ctx.rank(),
                coll::shrink(coll::Comm::recovery(ctx, world(P)),
                             /*max_failures=*/1, false));
  });
  for (int r = 0; r < P; ++r) {
    const auto& result = results.by_rank[static_cast<std::size_t>(r)];
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->survivors.ranks(), world(P));
    EXPECT_TRUE(result->survivors.is_recovery());
    EXPECT_TRUE(result->failed.empty());
    EXPECT_FALSE(result->any_abandoned);
    EXPECT_EQ(result->survivor_index(r), r);
  }
}

TEST(Shrink, FaultFreeCostMatchesTheClosedForm) {
  for (int P : {2, 5, 8, 33}) {
    for (int max_failures : {0, 1, 2}) {
      Machine machine(P);
      machine.run([&](RankCtx& ctx) {
        ctx.set_phase("shrink");
        coll::shrink(coll::Comm::recovery(ctx, world(P)), max_failures, false);
      });
      for (int r = 0; r < P; ++r) {
        EXPECT_EQ(machine.stats().rank_phase(r, "shrink").words_received(),
                  coll::shrink_recv_words_exact(P, max_failures))
            << "P=" << P << " f=" << max_failures << " rank=" << r;
      }
    }
  }
}

TEST(Shrink, SurvivorsAgreeOnACrashedMember) {
  const int P = 6;
  Machine machine(P);
  // Rank 3 dies at its very first send — which is inside shrink itself, so
  // this also exercises crash-during-protocol tolerance.
  machine.enable_crashes({{3, 0}});
  Results results(P);
  machine.run([&](RankCtx& ctx) {
    results.put(ctx.rank(),
                coll::shrink(coll::Comm::recovery(ctx, world(P)),
                             /*max_failures=*/1, false));
  });
  ASSERT_EQ(machine.crash_outcome().crashed, std::vector<int>{3});
  const std::vector<int> expect_survivors = {0, 1, 2, 4, 5};
  for (int r : expect_survivors) {
    const auto& result = results.by_rank[static_cast<std::size_t>(r)];
    ASSERT_TRUE(result.has_value()) << "rank " << r;
    EXPECT_EQ(result->survivors.ranks(), expect_survivors) << "rank " << r;
    EXPECT_EQ(result->failed, std::vector<int>{3}) << "rank " << r;
    EXPECT_EQ(result->survivor_index(3), -1);
  }
}

TEST(Shrink, AbandonedFlagReachesEverySurvivor) {
  const int P = 4;
  Machine machine(P);
  Results results(P);
  machine.run([&](RankCtx& ctx) {
    // Rank 2 reports that it abandoned the algorithm phase; everyone must
    // learn this (it forces the expensive recovery path in the ABFT layer).
    const bool i_abandoned = ctx.rank() == 2;
    results.put(ctx.rank(),
                coll::shrink(coll::Comm::recovery(ctx, world(P)),
                             /*max_failures=*/1, i_abandoned));
  });
  for (int r = 0; r < P; ++r) {
    const auto& result = results.by_rank[static_cast<std::size_t>(r)];
    ASSERT_TRUE(result.has_value());
    EXPECT_TRUE(result->any_abandoned) << "rank " << r;
  }
}

TEST(Shrink, SingletonGroupIsFree) {
  Machine machine(2);
  machine.run([&](RankCtx& ctx) {
    ctx.set_phase("shrink");
    const auto result = coll::shrink(coll::Comm::recovery(ctx, {ctx.rank()}),
                                     /*max_failures=*/1, false);
    EXPECT_EQ(result.survivors.ranks(), std::vector<int>{ctx.rank()});
  });
  EXPECT_EQ(machine.stats().rank_phase(0, "shrink").words_received(), 0);
  EXPECT_EQ(coll::shrink_recv_words_exact(1, 3), 0);
}

}  // namespace
}  // namespace camb
