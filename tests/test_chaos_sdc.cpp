// Chaos sweep: silent-data-corruption injection (message drops, payload
// bit-flips, duplicates) under the reliable transport, across every
// registered algorithm, both schedulers, and in composition with crashes,
// checkpoints, and timing faults.  The invariants are exact, not
// statistical:
//
//   * results stay bit-identical to the fault-free run (the transport heals
//     every injected event; nothing silently wrong ever escapes),
//   * algorithm-phase counters are untouched; the whole transport tax lands
//     in the "transport" phase and equals the closed-form replay predictor
//     coll::predicted_transport_phase rank for rank, word for word,
//   * the CorruptionReport balances: every corrupt copy caught and nacked,
//     every duplicate discarded or parked as benign debris, zero escapes,
//   * memory SDC (post-run tile bit-flips) is repaired exactly by the ABFT
//     checksum intersection when within the single-error code, and honestly
//     surfaces as a nonzero residual when beyond it.
#include <gtest/gtest.h>

#include <cstddef>
#include <map>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "collectives/coll_cost.hpp"
#include "machine/faults.hpp"
#include "matmul/algorithm_registry.hpp"
#include "matmul/runner.hpp"

namespace camb::mm {
namespace {

using camb::core::Shape;

struct SweepCase {
  Shape shape;
  i64 nprocs;
};

// Machine sizes covering every algorithm's applicability predicate (powers
// of two for CARMA, squares for SUMMA/Cannon/ABFT, g*g*c for 2.5D,
// arbitrary for the grid3d family).
const SweepCase kCases[] = {
    {{12, 8, 6}, 4},
    {{16, 16, 16}, 8},
    {{24, 6, 10}, 9},
};

// Per-copy drop = flip = dup probability for the sweep.  High enough that
// every run injects events, low enough that the probability of any send
// exhausting its 12-copy retransmit budget is negligible (~0.1^12).
constexpr double kRate = 0.08;

std::string case_label(const SweepCase& c, const std::string& algorithm) {
  return algorithm + " shape=(" + std::to_string(c.shape.n1) + "," +
         std::to_string(c.shape.n2) + "," + std::to_string(c.shape.n3) +
         ") P=" + std::to_string(c.nprocs);
}

/// The profile configure_machine builds for a pure --sdc-rate run: SDC
/// probabilities merged into an otherwise empty profile.
FaultProfile sdc_only_profile(double rate) {
  FaultProfile profile;
  profile.drop_prob = rate;
  profile.flip_prob = rate;
  profile.dup_prob = rate;
  return profile;
}

const RunReport& clean_baseline(std::size_t case_idx,
                                const AlgorithmInfo& algorithm) {
  static std::map<std::pair<std::size_t, std::string>, RunReport> cache;
  const auto key = std::make_pair(case_idx, algorithm.name);
  auto it = cache.find(key);
  if (it == cache.end()) {
    const SweepCase& c = kCases[case_idx];
    it = cache
             .emplace(key, algorithm.run_opts(
                               c.shape, c.nprocs,
                               RunOptions::verified(VerifyMode::kReference)))
             .first;
  }
  return it->second;
}

/// The exactness contract of one healed run against its clean twin: bit-
/// identical output, balanced corruption ledger, and per-rank totals pinned
/// to clean + the closed-form transport tax.
void expect_healed_exactly(const RunReport& faulted, const RunReport& clean,
                           const FaultProfile& profile,
                           std::uint64_t fault_seed, std::uint64_t sdc_seed,
                           int nprocs, const std::string& label) {
  EXPECT_EQ(faulted.output_hash, clean.output_hash) << label;
  EXPECT_EQ(faulted.max_abs_error, clean.max_abs_error) << label;
  EXPECT_TRUE(faulted.verified) << label;

  const CorruptionReport& cr = faulted.corruption;
  EXPECT_TRUE(cr.enabled) << label;
  EXPECT_EQ(cr.sdc_seed, sdc_seed) << label;
  EXPECT_EQ(cr.escaped, 0) << label;
  // Every corrupt copy was caught by the receiver's checksum and nacked;
  // every duplicate was discarded in-flight or parked as benign debris.
  EXPECT_EQ(cr.caught_at_transport, cr.injected_flips) << label;
  EXPECT_EQ(cr.nacks, cr.injected_flips) << label;
  EXPECT_EQ(cr.dup_discards + cr.transport_debris, cr.injected_dups) << label;
  EXPECT_EQ(cr.retransmits, cr.injected_drops + cr.injected_flips) << label;

  // Word-exact tax: replaying the seeded plan against the counted-send log
  // predicts the measured per-rank totals exactly.
  ASSERT_FALSE(faulted.trace_events.empty()) << label;
  const std::vector<PhaseCounters> tax = coll::predicted_transport_phase(
      profile, fault_seed, sdc_seed, nprocs, faulted.trace_events);
  i64 predicted_retransmit_words = 0;
  for (int r = 0; r < nprocs; ++r) {
    EXPECT_EQ(faulted.rank_recv_words[static_cast<std::size_t>(r)],
              clean.rank_recv_words[static_cast<std::size_t>(r)] +
                  tax[static_cast<std::size_t>(r)].words_received())
        << label << " rank " << r;
    EXPECT_EQ(faulted.rank_sent_words[static_cast<std::size_t>(r)],
              clean.rank_sent_words[static_cast<std::size_t>(r)] +
                  tax[static_cast<std::size_t>(r)].words_sent())
        << label << " rank " << r;
    EXPECT_EQ(faulted.rank_messages[static_cast<std::size_t>(r)],
              clean.rank_messages[static_cast<std::size_t>(r)] +
                  tax[static_cast<std::size_t>(r)].messages_sent)
        << label << " rank " << r;
    predicted_retransmit_words +=
        tax[static_cast<std::size_t>(r)].words_sent();
  }
  // The sender-side word tax splits into retransmitted words (dropped +
  // corrupt copies, reported) and duplicate words (one clean-sized copy per
  // injected dup): with no dups the measured retransmit words must equal
  // the predictor's total exactly, otherwise they are a strict part of it.
  if (cr.injected_dups == 0) {
    EXPECT_EQ(predicted_retransmit_words, cr.retransmitted_words) << label;
  } else {
    EXPECT_GE(predicted_retransmit_words, cr.retransmitted_words) << label;
  }

  // Retransmits and backoff only ever cost time.
  EXPECT_GE(faulted.simulated_time, clean.simulated_time) << label;
}

// ---------------------------------------------------------------------------
// The 16-run acceptance sweep: 8 SDC seeds x both schedulers, over every
// registered algorithm at every applicable case.
// ---------------------------------------------------------------------------

class ChaosSdcSweep
    : public ::testing::TestWithParam<std::tuple<int, SchedulerKind>> {};

TEST_P(ChaosSdcSweep, HealsEveryAlgorithmBitIdentically) {
  const auto [seed_idx, kind] = GetParam();
  const std::uint64_t sdc_seed = 0x5DC0 + static_cast<std::uint64_t>(seed_idx);

  RunOptions opts = RunOptions::verified(VerifyMode::kReference);
  opts.sdc.message_rate = kRate;
  opts.sdc.reliable = true;
  opts.sdc.sdc_seed_override = sdc_seed;
  opts.collect_trace = true;
  opts.scheduler.kind = kind;

  const FaultProfile profile = sdc_only_profile(kRate);
  i64 total_injected = 0;
  for (std::size_t ci = 0; ci < std::size(kCases); ++ci) {
    const SweepCase& c = kCases[ci];
    for (const auto& algorithm : algorithm_registry()) {
      if (!algorithm.supports(c.shape, c.nprocs)) continue;
      const RunReport& clean = clean_baseline(ci, algorithm);
      const RunReport faulted = algorithm.run_opts(c.shape, c.nprocs, opts);
      const std::string label =
          case_label(c, algorithm.name) + " " + faulted.corruption.summary();
      expect_healed_exactly(faulted, clean, profile,
                            opts.perturb.fault_seed(), sdc_seed,
                            static_cast<int>(c.nprocs), label);
      total_injected += faulted.corruption.injected_drops +
                        faulted.corruption.injected_flips +
                        faulted.corruption.injected_dups;
    }
  }
  // The sweep must actually exercise the transport, not vacuously pass.
  EXPECT_GT(total_injected, 0);
}

INSTANTIATE_TEST_SUITE_P(
    SdcSeeds, ChaosSdcSweep,
    ::testing::Combine(::testing::Range(0, 8),
                       ::testing::Values(SchedulerKind::kThreads,
                                         SchedulerKind::kFibers)));

TEST(ChaosSchedulerEquivalence, FiberTwinIsWordExactUnderSdc) {
  // Same seeds, different scheduler: the healed runs must agree on every
  // counter and every output bit, not merely both verify.
  RunOptions opts = RunOptions::verified(VerifyMode::kReference);
  opts.sdc.message_rate = kRate;
  opts.sdc.reliable = true;
  opts.sdc.sdc_seed_override = 0xF1BE;
  for (const char* name : {"summa", "grid3d_optimal", "alg25d"}) {
    const auto& algorithm = algorithm_by_name(name);
    const Shape shape{16, 16, 16};
    if (!algorithm.supports(shape, 8)) continue;
    opts.scheduler.kind = SchedulerKind::kThreads;
    const RunReport threads = algorithm.run_opts(shape, 8, opts);
    opts.scheduler.kind = SchedulerKind::kFibers;
    const RunReport fibers = algorithm.run_opts(shape, 8, opts);
    EXPECT_EQ(fibers.output_hash, threads.output_hash) << name;
    EXPECT_EQ(fibers.rank_recv_words, threads.rank_recv_words) << name;
    EXPECT_EQ(fibers.rank_sent_words, threads.rank_sent_words) << name;
    EXPECT_EQ(fibers.rank_messages, threads.rank_messages) << name;
    EXPECT_EQ(fibers.simulated_time, threads.simulated_time) << name;
    EXPECT_EQ(fibers.corruption.injected_drops,
              threads.corruption.injected_drops)
        << name;
    EXPECT_EQ(fibers.corruption.retransmitted_words,
              threads.corruption.retransmitted_words)
        << name;
  }
}

// ---------------------------------------------------------------------------
// Composition: SDC x crashes (ABFT reconstruction), SDC x checkpoint
// rollback, SDC x timing faults — each under both schedulers.
// ---------------------------------------------------------------------------

class ChaosComposition : public ::testing::TestWithParam<SchedulerKind> {};

TEST_P(ChaosComposition, SdcPlusCrashAbftReconstruction) {
  const Shape shape{18, 18, 18};
  const auto& algorithm = algorithm_by_name("summa_abft");
  const RunReport clean = algorithm.run_opts(
      shape, 9, RunOptions::verified(VerifyMode::kReference));

  RunOptions opts = RunOptions::verified(VerifyMode::kReference);
  opts.sdc.message_rate = 0.06;
  opts.sdc.reliable = true;
  opts.sdc.sdc_seed_override = 0xAB1;
  opts.crash.ranks = {4};
  opts.crash.max_send_position = 6;
  opts.scheduler.kind = GetParam();
  const RunReport faulted = algorithm.run_opts(shape, 9, opts);
  const std::string label = "summa_abft crash+sdc " +
                            faulted.corruption.summary();

  ASSERT_FALSE(faulted.recovery.crashed.empty())
      << label << ": crash never fired — widen max_send_position";
  // The dead rank's tile is reconstructed from checksums AND every injected
  // transport event healed: the output is still bit-identical.
  EXPECT_EQ(faulted.output_hash, clean.output_hash) << label;
  EXPECT_EQ(faulted.max_abs_error, clean.max_abs_error) << label;
  EXPECT_TRUE(faulted.verified) << label;
  EXPECT_EQ(faulted.corruption.escaped, 0) << label;
  EXPECT_GT(faulted.corruption.injected_drops +
                faulted.corruption.injected_flips +
                faulted.corruption.injected_dups,
            0)
      << label;
  // Copies addressed to (or parked in) the dead rank's mailbox become crash
  // debris, so in-flight catches may undercount injections — never overcount.
  EXPECT_LE(faulted.corruption.caught_at_transport,
            faulted.corruption.injected_flips)
      << label;
}

TEST_P(ChaosComposition, SdcPlusCheckpointRollback) {
  const Shape shape{18, 18, 18};
  const auto& algorithm = algorithm_by_name("summa");
  const RunReport clean = algorithm.run_opts(
      shape, 9, RunOptions::verified(VerifyMode::kReference));

  RunOptions opts = RunOptions::verified(VerifyMode::kReference);
  opts.sdc.message_rate = 0.06;
  opts.sdc.reliable = true;
  opts.sdc.sdc_seed_override = 0xAB2;
  opts.crash.ranks = {3};
  opts.crash.max_send_position = 6;
  opts.checkpoint.interval = 2;
  opts.checkpoint.spares = 1;
  opts.scheduler.kind = GetParam();
  const RunReport report = algorithm.run_opts(shape, 9, opts);
  const std::string label = "summa ckpt+sdc " + report.corruption.summary();

  ASSERT_FALSE(report.recovery.crashed.empty())
      << label << ": crash never fired — widen max_send_position";
  EXPECT_GE(report.resilience.rounds, 2) << label;
  EXPECT_EQ(report.output_hash, clean.output_hash) << label;
  EXPECT_EQ(report.max_abs_error, clean.max_abs_error) << label;
  EXPECT_TRUE(report.verified) << label;
  EXPECT_EQ(report.corruption.escaped, 0) << label;
  EXPECT_GT(report.corruption.injected_drops +
                report.corruption.injected_flips +
                report.corruption.injected_dups,
            0)
      << label;
}

TEST_P(ChaosComposition, SdcPlusTimingFaultProfile) {
  // SDC rates merge into a heavy timing-fault profile: delays, retries, and
  // stragglers jitter the schedule while the transport heals corruption.
  // The closed-form tax still pins the totals exactly — fault decisions are
  // program-order facts, not timing facts.
  RunOptions opts = RunOptions::verified(VerifyMode::kReference);
  opts.perturb.profile = "heavy";
  opts.perturb.master_seed = 0xC0FFEE;
  opts.sdc.message_rate = kRate;
  opts.sdc.reliable = true;
  opts.sdc.sdc_seed_override = 0xAB3;
  opts.collect_trace = true;
  opts.scheduler.kind = GetParam();

  FaultProfile profile = fault_profile_from_spec("heavy");
  profile.drop_prob = std::max(profile.drop_prob, kRate);
  profile.flip_prob = std::max(profile.flip_prob, kRate);
  profile.dup_prob = std::max(profile.dup_prob, kRate);

  for (const char* name : {"summa", "grid3d_optimal"}) {
    const auto& algorithm = algorithm_by_name(name);
    const Shape shape{16, 16, 16};
    const i64 nprocs = (std::string(name) == "summa") ? 4 : 8;
    if (!algorithm.supports(shape, nprocs)) continue;
    const RunReport clean = algorithm.run_opts(
        shape, nprocs, RunOptions::verified(VerifyMode::kReference));
    const RunReport faulted = algorithm.run_opts(shape, nprocs, opts);
    expect_healed_exactly(faulted, clean, profile, opts.perturb.fault_seed(),
                          opts.sdc.sdc_seed_override,
                          static_cast<int>(nprocs),
                          std::string(name) + " heavy+sdc " +
                              faulted.corruption.summary());
    EXPECT_TRUE(faulted.faults.enabled);
  }
}

INSTANTIATE_TEST_SUITE_P(Schedulers, ChaosComposition,
                         ::testing::Values(SchedulerKind::kThreads,
                                           SchedulerKind::kFibers));

// ---------------------------------------------------------------------------
// Memory SDC: post-run tile bit-flips repaired by the ABFT checksum
// intersection (or honestly surfaced when beyond the single-error code).
// ---------------------------------------------------------------------------

TEST(MemorySdc, SummaSingleErrorCorrectedExactly) {
  const Shape shape{18, 18, 18};
  const auto& algorithm = algorithm_by_name("summa_abft");
  const RunReport clean = algorithm.run_opts(
      shape, 9, RunOptions::verified(VerifyMode::kReference));

  int single_corrected = 0;
  int multi_runs = 0;
  for (int seed = 1; seed <= 24; ++seed) {
    RunOptions opts = RunOptions::verified(VerifyMode::kReference);
    opts.sdc.mem_rate = 0.12;
    opts.sdc.sdc_seed_override = static_cast<std::uint64_t>(seed);
    const RunReport report = algorithm.run_opts(shape, 9, opts);
    const std::string label =
        "summa_abft mem seed=" + std::to_string(seed) + " " +
        report.corruption.summary();
    if (report.corruption.injected_mem_flips == 0) {
      EXPECT_EQ(report.corruption.detected_by_checksums, 0) << label;
      EXPECT_EQ(report.output_hash, clean.output_hash) << label;
      continue;
    }
    // Every injected flip is detected by the syndromes.
    EXPECT_EQ(report.corruption.detected_by_checksums,
              report.corruption.injected_mem_flips)
        << label;
    if (report.corruption.injected_mem_flips == 1) {
      // Within the single-error code: localized, repaired, bit-identical.
      EXPECT_EQ(report.corruption.corrected_by_abft, 1) << label;
      EXPECT_EQ(report.corruption.escaped, 0) << label;
      EXPECT_EQ(report.output_hash, clean.output_hash) << label;
      EXPECT_EQ(report.max_abs_error, clean.max_abs_error) << label;
      ++single_corrected;
    } else {
      // Beyond it: the pass must degrade honestly — escapes are reported
      // and the residual is nonzero, never a silently wrong "verified".
      EXPECT_GT(report.corruption.escaped, 0) << label;
      EXPECT_GT(report.max_abs_error, 0) << label;
      ++multi_runs;
    }
  }
  EXPECT_GT(single_corrected, 0) << "no seed produced exactly one flip";
  (void)multi_runs;  // informational; rate 0.12 over 9 ranks keeps it rare
}

TEST(MemorySdc, Grid3dRepairsOneErrorPerFiber) {
  const Shape shape{16, 16, 16};
  const auto& algorithm = algorithm_by_name("grid3d_abft");
  const RunReport clean = algorithm.run_opts(
      shape, 8, RunOptions::verified(VerifyMode::kReference));

  int corrected_runs = 0;
  for (int seed = 1; seed <= 24; ++seed) {
    RunOptions opts = RunOptions::verified(VerifyMode::kReference);
    opts.sdc.mem_rate = 0.3;
    opts.sdc.sdc_seed_override = static_cast<std::uint64_t>(seed);
    const RunReport report = algorithm.run_opts(shape, 8, opts);
    const std::string label = "grid3d_abft mem seed=" + std::to_string(seed) +
                              " " + report.corruption.summary();
    EXPECT_EQ(report.corruption.detected_by_checksums,
              report.corruption.injected_mem_flips)
        << label;
    if (report.corruption.escaped == 0) {
      // Parity + dot-product disambiguation repaired every flip (one per
      // C fiber is correctable independently): bit-identical output.
      EXPECT_EQ(report.corruption.corrected_by_abft,
                report.corruption.injected_mem_flips)
          << label;
      EXPECT_EQ(report.output_hash, clean.output_hash) << label;
      EXPECT_EQ(report.max_abs_error, clean.max_abs_error) << label;
      if (report.corruption.corrected_by_abft > 0) ++corrected_runs;
    } else {
      EXPECT_GT(report.max_abs_error, 0) << label;
    }
  }
  EXPECT_GT(corrected_runs, 0);
}

TEST(MemorySdc, ContradictoryConfigurationsAreRejected) {
  const Shape shape{12, 8, 6};
  // Memory SDC without a correction path: no ABFT checksums, no repair.
  {
    RunOptions opts = RunOptions::verified(VerifyMode::kNone);
    opts.sdc.mem_rate = 0.5;
    EXPECT_THROW(algorithm_by_name("grid3d_optimal").run_opts(shape, 4, opts),
                 Error);
    EXPECT_THROW(algorithm_by_name("summa").run_opts(shape, 4, opts), Error);
  }
  // Memory SDC under rollback recovery: re-execution would mask the repair
  // path instead of exercising it.
  {
    RunOptions opts = RunOptions::verified(VerifyMode::kNone);
    opts.sdc.mem_rate = 0.5;
    opts.checkpoint.interval = 2;
    EXPECT_THROW(
        algorithm_by_name("summa_abft").run_opts({18, 18, 18}, 9, opts),
        Error);
  }
  // Message SDC without the reliable transport: a dropped copy would hang
  // its receiver, so the machine refuses up front.
  {
    RunOptions opts = RunOptions::verified(VerifyMode::kNone);
    opts.sdc.message_rate = 0.1;
    EXPECT_THROW(algorithm_by_name("summa").run_opts(shape, 4, opts), Error);
  }
}

}  // namespace
}  // namespace camb::mm
