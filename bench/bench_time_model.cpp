// bench_time_model — the full α-β-γ running-time picture.
//
// The paper's bounds fix the β (bandwidth) term; this bench puts it in
// context: predicted execution times of Algorithm 1 vs the baselines across
// machine parameter regimes (latency-dominated, bandwidth-dominated,
// compute-dominated), and the latency price of the §6.2 staged variant.
// All rows are closed-form model evaluations cross-checked against measured
// message/word counts from executed runs.
#include <iostream>

#include "core/grid.hpp"
#include "matmul/time_model.hpp"
#include "util/table.hpp"

using namespace camb;
using mm::MachineParams;

namespace {

void regime_table(const char* label, const MachineParams& params) {
  const core::Shape shape{9600, 2400, 600};
  const i64 P = 64;
  const core::Grid3 optimal = core::best_integer_grid(shape, P);
  std::cout << "--- " << label << ": alpha=" << params.alpha
            << "s, beta=" << params.beta << "s/word, gamma=" << params.gamma
            << "s/flop; paper shape, P = 64 ---\n";
  Table table({"algorithm", "latency s", "bandwidth s", "compute s",
               "total s"});
  auto add = [&](const std::string& name, const mm::TimeBreakdown& t) {
    table.add_row({name, Table::fmt_sci(t.latency, 2),
                   Table::fmt_sci(t.bandwidth, 2), Table::fmt_sci(t.compute, 2),
                   Table::fmt_sci(t.total(), 2)});
  };
  add("Alg. 1, optimal grid " + std::to_string(optimal.p1) + "x" +
          std::to_string(optimal.p2) + "x" + std::to_string(optimal.p3),
      mm::alg1_time(shape, optimal, params));
  add("Alg. 1, square 2D grid 8x1x8",
      mm::alg1_time(shape, core::Grid3{8, 1, 8}, params));
  add("Alg. 1, ring collectives",
      mm::alg1_time(shape, optimal, params, coll::AllgatherAlgo::kRing,
                    coll::ReduceScatterAlgo::kRing));
  add("SUMMA 8x8", mm::summa_time(shape, 8, params));
  add("Cannon 8x8", mm::cannon_time(shape, 8, params));
  table.print(std::cout);
  std::cout << "\n";
}

void staging_latency_price() {
  const core::Shape shape{9600, 2400, 600};
  const core::Grid3 grid{16, 4, 1};  // optimal at P = 64
  std::cout << "--- latency price of §6.2 staging (alpha = 1e-5 s) ---\n";
  MachineParams params{1e-5, 1e-9, 1e-11};
  Table table({"stages", "latency s", "bandwidth s", "total s"});
  for (i64 stages : {1, 4, 16, 64, 256}) {
    const auto t = mm::alg1_staged_time(shape, grid, stages, params);
    table.add_row({Table::fmt_int(stages), Table::fmt_sci(t.latency, 2),
                   Table::fmt_sci(t.bandwidth, 2),
                   Table::fmt_sci(t.total(), 2)});
  }
  table.print(std::cout);
  std::cout << "\nBandwidth is constant; staging is free until the stage "
               "count makes\nalpha * stages * rounds comparable to beta * "
               "words.\n\n";
}

void measured_crosscheck() {
  std::cout << "--- model vs measured (executed run, shape 384x96x24, P = 16) "
               "---\n";
  const core::Shape shape{384, 96, 24};
  const core::Grid3 grid{8, 2, 1};
  MachineParams params{1e-6, 1e-9, 0.0};
  const auto predicted = mm::alg1_time(shape, grid, params);
  const auto report = mm::run_grid3d(mm::Grid3dConfig{shape, grid}, false);
  const double measured = mm::measured_time(report, 0.0, params);
  std::cout << "predicted (closed form): " << Table::fmt_sci(predicted.total(), 6)
            << " s\nmeasured  (machine):     " << Table::fmt_sci(measured, 6)
            << " s\n(messages " << report.measured_critical_messages
            << ", words " << report.measured_critical_recv << ")\n\n";

  // Scheduled critical path from the logical clocks: unlike the aggregate
  // alpha*msgs + beta*words estimate, it follows the program's actual
  // dependency structure — for symmetric divisible configs the two coincide.
  std::cout << "--- scheduled critical path (logical clocks) vs closed form "
               "---\n";
  Table table({"algorithm", "closed form s", "scheduled s"});
  {
    Machine machine(16);
    machine.set_time_params(AlphaBeta{params.alpha, params.beta});
    mm::Grid3dConfig cfg{shape, grid};
    machine.run([&](RankCtx& ctx) { (void)mm::grid3d_rank(ctx, cfg); });
    table.add_row({"Alg. 1 (8x2x1)",
                   Table::fmt_sci(predicted.latency + predicted.bandwidth, 6),
                   Table::fmt_sci(machine.critical_path_time(), 6)});
  }
  {
    Machine machine(16);
    machine.set_time_params(AlphaBeta{params.alpha, params.beta});
    const auto closed = mm::summa_time(shape, 4, params);
    machine.run([&](RankCtx& ctx) {
      (void)mm::summa_rank(ctx, mm::SummaConfig{shape, 4});
    });
    table.add_row({"SUMMA 4x4 (broadcast trees pipeline)",
                   Table::fmt_sci(closed.latency + closed.bandwidth, 6),
                   Table::fmt_sci(machine.critical_path_time(), 6)});
  }
  table.print(std::cout);
  std::cout << "\nAlg. 1's symmetric collectives schedule exactly at the "
               "closed form; SUMMA's\nscheduled time EXCEEDS the per-rank "
               "aggregate because each stage's broadcast\nroot serializes its "
               "sends and consecutive stages chain through those roots —\n"
               "a dependency-structure cost the aggregate estimate "
               "underestimates and the\nlogical clock measures.\n";
}

}  // namespace

int main() {
  std::cout << "=== alpha-beta-gamma time model ===\n\n";
  regime_table("bandwidth-dominated machine", {1e-7, 1e-8, 1e-12});
  regime_table("latency-dominated machine", {1e-2, 1e-10, 1e-12});
  regime_table("compute-dominated machine", {1e-7, 1e-11, 1e-9});
  staging_latency_price();
  measured_crosscheck();
  return 0;
}
