// bench_elastic_overhead — what graceful degradation costs: for the three
// elastic twins (summa / grid3d / alg25d) at P in the mid-30s, kills
// 0..f ranks in the enlistment window and tables the transition bill —
// shrink agreement, migration tax, execution at P′ — against the
// fault-free elastic run and the Theorem 3 bound at the surviving P′.
//
// The numbers are exact, not sampled: every run must produce the
// bit-identical C of the fault-free elastic twin, and every machine rank's
// received words must equal the closed-form prediction (shrink control +
// width x (regrid + exec-at-P′ elements)) with zero tolerance.  Any missed
// prediction or wrong bit exits nonzero, so the perf leg doubles as a
// correctness gate.
//
// Usage: bench_elastic_overhead [--quick] [--out PATH]
//   --quick   fewer failure counts (the CI smoke mode)
//   --out     also emit a BENCH_PR9.json machine-readable report
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "matmul/elastic.hpp"
#include "matmul/runner.hpp"
#include "util/table.hpp"

using namespace camb;

namespace {

struct CaseResult {
  std::string algorithm;
  i64 P = 0;
  int failures = 0;
  i64 survivors = 0;
  i64 active = 0;
  std::string grid;
  double shrink_words = 0;     // per-survivor agreement control words
  double migration_words = 0;  // max per-rank regrid words (the tax)
  double exec_words = 0;       // max per-rank exec words on the final grid
  double clean_recv = 0;       // fault-free elastic critical-path recv
  double crashed_recv = 0;     // same, with f enlistment deaths
  double bound_pprime = 0;     // Theorem 3 at (shape, active ranks)
  double overhead_vs_bound = 0;  // exec / bound at P′
  bool exact = false;  // bit-identical C and per-rank words == prediction
};

std::string grid_str(const core::Grid3& g) {
  return std::to_string(g.p1) + "x" + std::to_string(g.p2) + "x" +
         std::to_string(g.p3);
}

/// Deterministic spread of f victims over [0, P): never adjacent, never
/// rank 0, so the survivor set exercises non-trivial regrid overlaps.
std::vector<int> victims(int f, i64 P) {
  std::vector<int> dead;
  for (int i = 0; i < f; ++i) {
    dead.push_back(static_cast<int>((1 + i * (P / 3 + 1)) % P));
  }
  return dead;
}

/// One (twin, f) cell: run with f enlistment-window deaths, pin every rank
/// against the closed-form prediction, and report the transition bill.
template <typename RunFn, typename PredictFn>
CaseResult run_case(const char* name, i64 P, int f, RunFn&& run,
                    PredictFn&& predict, const mm::RunReport& clean) {
  CaseResult res;
  res.algorithm = name;
  res.P = P;
  res.failures = f;

  mm::RunOptions opts = mm::RunOptions::verified(mm::VerifyMode::kReference);
  opts.elastic.enabled = true;
  opts.elastic.max_failures = std::max(1, f);
  if (f > 0) {
    opts.crash.ranks = victims(f, P);
    // All crash positions land inside the first zero-word probe round, so
    // recovery starts before any attempt-0 data moved — the scenario the
    // closed form prices.
    opts.crash.max_send_position = P - 2;
  }
  const mm::RunReport report = run(opts);

  const mm::ElasticPrediction pred = predict(
      report.elastic.failed, opts.elastic.max_failures);
  res.survivors = report.elastic.survivors;
  res.active = report.elastic.active_ranks;
  res.grid = grid_str(report.elastic.grid);
  res.shrink_words = report.elastic.shrink_recv_words;
  res.migration_words = report.elastic.migration_recv_words;
  res.exec_words = report.elastic.exec_recv_words;
  res.clean_recv = clean.measured_critical_recv;
  res.crashed_recv = report.measured_critical_recv;
  res.bound_pprime = report.elastic.bound_words_at_pprime;
  res.overhead_vs_bound = report.elastic.overhead_vs_bound;

  bool exact = report.verified && report.output_hash == clean.output_hash &&
               static_cast<int>(report.recovery.crashed.size()) == f &&
               report.elastic.survivors == pred.survivors &&
               report.elastic.active_ranks == pred.active_ranks &&
               report.measured_critical_recv == report.predicted_words();
  for (std::size_t r = 0; r < static_cast<std::size_t>(P); ++r) {
    exact &= report.rank_recv_words[r] == pred.rank_recv_words[r];
  }
  res.exact = exact;
  return res;
}

void write_json(const std::string& path, const std::vector<CaseResult>& rows,
                bool quick) {
  std::ofstream out(path);
  out << "{\n"
      << "  \"bench\": \"elastic_overhead\",\n"
      << "  \"mode\": \"" << (quick ? "quick" : "full") << "\",\n"
      << "  \"methodology\": \"f enlistment-window deaths per run; survivors "
         "shrink to the re-planned grid at P-f and finish; per-rank words "
         "pinned exactly against shrink + migration + exec-at-P' closed "
         "form and C pinned bit-identical to the fault-free elastic twin; "
         "shape 96x96x96\",\n"
      << "  \"cases\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const CaseResult& r = rows[i];
    out << "    {\"algorithm\": \"" << r.algorithm << "\", \"procs\": " << r.P
        << ", \"failures\": " << r.failures
        << ", \"survivors\": " << r.survivors << ", \"active\": " << r.active
        << ", \"grid\": \"" << r.grid << "\""
        << ", \"shrink_words\": " << r.shrink_words
        << ", \"migration_words\": " << r.migration_words
        << ", \"exec_words\": " << r.exec_words
        << ", \"clean_recv_words\": " << r.clean_recv
        << ", \"crashed_recv_words\": " << r.crashed_recv
        << ", \"bound_pprime\": " << r.bound_pprime
        << ", \"overhead_vs_bound\": " << r.overhead_vs_bound
        << ", \"exact\": " << (r.exact ? "true" : "false") << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }

  const core::Shape shape{96, 96, 96};
  const std::vector<int> failure_counts =
      quick ? std::vector<int>{0, 1} : std::vector<int>{0, 1, 2, 3};

  mm::SummaConfig summa{shape, 6};
  summa.integer_inputs = true;
  mm::Grid3dConfig grid3d{shape, core::Grid3{4, 3, 3}};
  grid3d.integer_inputs = true;
  mm::Alg25dConfig alg25d;
  alg25d.shape = shape;
  alg25d.g = 4;
  alg25d.c = 2;
  alg25d.integer_inputs = true;

  const mm::RunOptions clean_opts = [] {
    mm::RunOptions o = mm::RunOptions::verified(mm::VerifyMode::kReference);
    o.elastic.enabled = true;
    return o;
  }();

  std::cout << "=== Elastic shrink-and-regrid: the transition bill ===\n"
            << "(f enlistment deaths; 'exact' pins every rank's words to the "
               "shrink + migration + exec-at-P' closed form and C to the "
               "fault-free bits)\n\n";
  Table table({"algorithm", "P", "f", "P'", "grid", "shrink w", "migr w",
               "exec w", "vs Thm3@P'", "exact"});
  std::vector<CaseResult> rows;
  bool all_exact = true;

  const auto sweep = [&](const char* name, i64 P, auto&& run, auto&& predict) {
    const mm::RunReport clean = run(clean_opts);
    for (int f : failure_counts) {
      const CaseResult res = run_case(name, P, f, run, predict, clean);
      all_exact &= res.exact;
      rows.push_back(res);
      table.add_row({res.algorithm, Table::fmt_int(res.P),
                     Table::fmt_int(res.failures),
                     Table::fmt_int(res.survivors), res.grid,
                     Table::fmt(res.shrink_words, 0),
                     Table::fmt(res.migration_words, 1),
                     Table::fmt(res.exec_words, 1),
                     Table::fmt(res.overhead_vs_bound, 4),
                     res.exact ? "bit-exact" : "NO"});
    }
  };

  sweep(
      "summa_elastic", 36,
      [&](const mm::RunOptions& o) { return mm::run_summa_elastic(summa, o); },
      [&](const std::vector<int>& failed, int max_failures) {
        return mm::summa_elastic_prediction(
            summa, mm::ElasticConfig{true, max_failures}, failed, 36, 1.0);
      });
  sweep(
      "grid3d_elastic", 36,
      [&](const mm::RunOptions& o) {
        return mm::run_grid3d_elastic(grid3d, o);
      },
      [&](const std::vector<int>& failed, int max_failures) {
        return mm::grid3d_elastic_prediction(
            grid3d, mm::ElasticConfig{true, max_failures}, failed, 36, 1.0);
      });
  sweep(
      "alg25d_elastic", 32,
      [&](const mm::RunOptions& o) {
        return mm::run_alg25d_elastic(alg25d, o);
      },
      [&](const std::vector<int>& failed, int max_failures) {
        return mm::alg25d_elastic_prediction(
            alg25d, mm::ElasticConfig{true, max_failures}, failed, 32, 1.0);
      });

  table.print(std::cout);
  std::cout << (all_exact
                    ? "\nEvery run finished bit-identically on the shrunken "
                      "grid and matched the closed-form bill exactly.\n"
                    : "\nSOME RUN MISSED ITS PREDICTION OR CHANGED BITS — "
                      "investigate!\n");
  if (!out_path.empty()) {
    write_json(out_path, rows, quick);
    std::cout << "wrote " << out_path << "\n";
  }
  return all_exact ? 0 : 1;
}
