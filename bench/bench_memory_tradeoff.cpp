// bench_memory_tradeoff — §6.2, executed: the memory/communication/latency
// trade-off space around Algorithm 1.
//
// Three mechanisms, all measured on the simulated machine:
//   1. Staged Algorithm 1: same bandwidth, peak temporary memory shrinks
//      with the stage count, latency grows with it ("reduce the temporary
//      memory … at the expense of higher latency cost but without affecting
//      the bandwidth cost").
//   2. 2.5D replication: more memory (c copies) buys less bandwidth — the
//      smooth trade-off of Solomonik–Demmel / McColl–Tiskin cited in §6.2.
//   3. Grid choice under a memory cap: which grids even fit in a given M,
//      and the bandwidth cost of the best fitting one vs the unconstrained
//      optimum.
#include <algorithm>
#include <iostream>

#include "core/bounds.hpp"
#include "core/cost_eq3.hpp"
#include "core/grid.hpp"
#include "matmul/runner.hpp"
#include "util/table.hpp"

using namespace camb;

namespace {

void staged_sweep() {
  const core::Shape shape{384, 96, 24};
  const core::Grid3 grid{8, 2, 1};  // optimal for P = 16
  std::cout << "--- staged Algorithm 1: shape 384x96x24, grid 8x2x1 ---\n"
            << "(peak memory MEASURED via the machine's working-set "
               "accounting, model in parentheses)\n";
  Table table({"stages", "measured words", "messages",
               "peak memory measured (model)", "vs 1-stage"});
  double mem1 = 0;
  for (i64 stages : {1, 2, 4, 8, 16, 48}) {
    mm::Grid3dStagedConfig cfg{shape, grid, stages};
    const auto report = mm::run_grid3d_staged(cfg, false);
    const auto peak = static_cast<double>(report.measured_peak_memory_words);
    if (stages == 1) mem1 = peak;
    table.add_row({Table::fmt_int(stages),
                   Table::fmt_int(report.measured_critical_recv),
                   Table::fmt_int(report.measured_critical_messages),
                   Table::fmt(peak, 0) + " (" +
                       Table::fmt(mm::grid3d_staged_peak_memory_words(cfg), 0) +
                       ")",
                   Table::fmt(peak / mem1, 3) + "x"});
  }
  table.print(std::cout);
  std::cout << "\nBandwidth is identical in every row (the §6.2 claim); the "
               "B-block term\n(gathered once, kept) is the floor the staging "
               "cannot cross.\n\n";
}

void replication_sweep() {
  const core::Shape shape{48, 48, 48};
  std::cout << "--- 2.5D replication: shape 48x48x48, g = 4 (P = 16c) ---\n";
  Table table({"c", "P", "measured words/rank", "memory words/rank",
               "words * sqrt(c)"});
  for (i64 c : {1, 2, 4}) {
    mm::Alg25dConfig cfg{shape, 4, c};
    const auto report = mm::run_alg25d(cfg, true);
    const double words = static_cast<double>(report.measured_critical_recv);
    table.add_row({Table::fmt_int(c), Table::fmt_int(16 * c),
                   Table::fmt(words, 0),
                   Table::fmt(mm::alg25d_memory_words(cfg) * c, 0),
                   Table::fmt(words * std::sqrt(static_cast<double>(c)), 0)});
  }
  table.print(std::cout);
  std::cout << "\n(The shift term scales ~1/c at fixed g; the classical 2.5D "
               "analysis predicts\ntotal words ~ n^2/sqrt(cP) when g grows "
               "as sqrt(P/c).)\n\n";
}

void memory_capped_grids() {
  const core::Shape shape{9600, 2400, 600};
  const i64 P = 512;
  std::cout << "--- grid choice under a memory cap: paper shape, P = 512 "
               "---\n";
  const auto bound =
      core::memory_independent_bound(shape, static_cast<double>(P));
  const core::Grid3 optimal = core::best_integer_grid(shape, P);
  Table table({"memory cap (words)", "best unstaged grid", "eq.3 words",
               "vs bound", "staged alternative"});
  for (double cap : {5e5, 3e5, 2e5, 1.5e5, 1.2e5, 1e5}) {
    core::Grid3 best;
    double best_cost = -1;
    for (const core::Grid3& g : core::all_grids(P)) {
      if (core::alg1_memory_words(shape, g) > cap) continue;
      const double cost = core::alg1_cost_words(shape, g);
      if (best_cost < 0 || cost < best_cost) {
        best_cost = cost;
        best = g;
      }
    }
    // Staged fallback on the optimal grid: the smallest stage count whose
    // peak fits the cap (the B block is an irreducible floor).
    std::string staged = "impossible (below B floor)";
    for (i64 s = 1; s <= 4096; s *= 2) {
      if (mm::grid3d_staged_peak_memory_words(
              mm::Grid3dStagedConfig{shape, optimal, s}) <= cap) {
        staged = std::to_string(s) + " stage(s), same bandwidth";
        break;
      }
    }
    table.add_row(
        {Table::fmt_sci(cap, 1),
         best_cost < 0 ? "none fits"
                       : std::to_string(best.p1) + "x" + std::to_string(best.p2) +
                             "x" + std::to_string(best.p3),
         best_cost < 0 ? "-" : Table::fmt(best_cost, 0),
         best_cost < 0 ? "-" : Table::fmt(best_cost / bound.words, 3) + "x",
         staged});
  }
  table.print(std::cout);
  std::cout
      << "\nBelow the 3D working set no plain grid fits, but the §6.2 staged "
         "variant keeps\nthe optimal grid's bandwidth down to the B-block "
         "floor; below that floor,\ncommunication must rise (the 2.5D/limited-"
         "memory regime).\n";
}

}  // namespace

int main() {
  std::cout << "=== Memory / communication / latency trade-offs (section "
               "6.2) ===\n\n";
  staged_sweep();
  replication_sweep();
  memory_capped_grids();
  return 0;
}
