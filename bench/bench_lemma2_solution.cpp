// bench_lemma2_solution — regenerates the paper's Lemma 2 visualization:
// the optimal projection sizes (x1*, x2*, x3*) as P sweeps across the two
// case boundaries P = m/n and P = mn/k^2.
//
//   case 1: x1* = nk (pinned), x2* = mk/P, x3* = mn/P
//   case 2: x1* = x2* = (mnk^2/P)^{1/2}, x3* = mn/P
//   case 3: x1* = x2* = x3* = (mnk/P)^{2/3}
//
// The table shows the variables coalescing exactly at the boundaries (the
// continuity remark closing the proof of Lemma 2), and an ASCII strip chart
// of which constraints are active — the paper's diagram in text form.
#include <cmath>
#include <iostream>

#include "core/kkt.hpp"
#include "core/optimization.hpp"
#include "util/table.hpp"

using namespace camb;
using namespace camb::core;

int main() {
  const double m = 9600, n = 2400, k = 600;
  std::cout << "=== Lemma 2: the optimal solution across P (m = " << m
            << ", n = " << n << ", k = " << k << ") ===\n"
            << "case boundaries: P = m/n = " << m / n
            << ", P = mn/k^2 = " << m * n / (k * k) << "\n\n";

  Table table({"P", "case", "x1*", "x2*", "x3*", "objective (=D)",
               "active constraints", "KKT"});
  for (double P : {1.0, 2.0, 3.0, 4.0, 6.0, 9.0, 16.0, 25.0, 36.0, 49.0, 64.0,
                   100.0, 256.0, 512.0, 2048.0, 16384.0}) {
    const Lemma2Problem prob{m, n, k, P};
    const auto sol = solve_analytic(prob);
    const auto g = constraint_values(prob, sol.x);
    std::string active = "LW";  // the Loomis-Whitney constraint: always tight
    const auto floors = prob.variable_floors();
    for (int i = 0; i < 3; ++i) {
      if (std::abs(sol.x[static_cast<std::size_t>(i)] -
                   floors[static_cast<std::size_t>(i)]) <=
          1e-9 * floors[static_cast<std::size_t>(i)]) {
        active += ",x" + std::to_string(i + 1);
      }
    }
    (void)g;
    const auto kkt = verify_kkt(prob, sol.x, sol.mu, 1e-8);
    table.add_row({Table::fmt(P, 0),
                   std::to_string(static_cast<int>(sol.regime)),
                   Table::fmt_sci(sol.x[0], 4), Table::fmt_sci(sol.x[1], 4),
                   Table::fmt_sci(sol.x[2], 4),
                   Table::fmt_sci(sol.objective, 4), active,
                   kkt.ok() ? "ok" : "VIOLATED"});
  }
  table.print(std::cout);

  std::cout << "\nStrip chart of the solution structure (the paper's "
               "diagram):\n\n";
  std::cout << "  P:        1 ........ m/n (=4) ........ mn/k^2 (=64) "
               "........ inf\n"
            << "  x1*:      [= nk, pinned ]  [== x2*, on the LW surface "
               "==============]\n"
            << "  x2*:      [= mk/P        ]  [== x1* ==]  [== x1* == x3* "
               "=======]\n"
            << "  x3*:      [= mn/P "
               "==================]  [= (mnk/P)^{2/3} ========]\n\n";

  // Continuity check at the boundaries, printed for the record.
  for (double boundary : {m / n, m * n / (k * k)}) {
    const auto below = solve_analytic({m, n, k, boundary * (1 - 1e-12)});
    const auto above = solve_analytic({m, n, k, boundary * (1 + 1e-12)});
    std::cout << "continuity at P = " << boundary << ": |obj- - obj+| = "
              << std::abs(below.objective - above.objective) << " (of "
              << below.objective << ")\n";
  }
  return 0;
}
