// bench_table1 — regenerates Table 1 of the paper: the explicit constants on
// the leading term of the memory-independent lower bound in each regime, for
// prior work and for Theorem 3 — and then demonstrates that Theorem 3's
// constants are *achieved* by Algorithm 1 (executed on the simulated
// machine), which is what makes them tight.
//
// Output:
//   (1) the table of constants exactly as in the paper;
//   (2) per regime, a sweep of executed runs showing
//       measured_words / leading_term -> the Theorem 3 constant.
#include <cmath>
#include <iostream>

#include "core/bounds.hpp"
#include "core/grid.hpp"
#include "core/prior_bounds.hpp"
#include "matmul/runner.hpp"
#include "util/table.hpp"

using namespace camb;

namespace {

std::string fmt_constant(const std::optional<double>& c) {
  return c.has_value() ? Table::fmt(c.value(), 3) : "-";
}

void print_constants_table() {
  std::cout << "=== Table 1: constants on the leading term of the "
               "memory-independent lower bound ===\n"
            << "regimes:  case 1: 1 <= P <= m/n   (leading term nk)\n"
            << "          case 2: m/n <= P <= mn/k^2   (leading term "
               "(mnk^2/P)^{1/2})\n"
            << "          case 3: mn/k^2 <= P   (leading term (mnk/P)^{2/3})\n\n";
  Table table({"result", "case 1", "case 2", "case 3"});
  for (const auto& row : core::table1_rows()) {
    table.add_row({row.name, fmt_constant(row.case1), fmt_constant(row.case2),
                   fmt_constant(row.case3)});
  }
  table.print(std::cout);
}

/// Executed demonstration that the Theorem 3 constant is attained: run
/// Algorithm 1 with the §5.2 grid and report measured words / leading term.
void print_attainment_sweep() {
  std::cout << "\n=== Attainment: executed Algorithm 1 vs the leading term "
               "===\n"
            << "(measured words -> constant * leading term as P grows within "
               "each regime;\n the lower-order -(mn+mk+nk)/P term explains "
               "the gap at small P)\n\n";
  // Scaled-down paper shape: 1536 x 384 x 96 (aspect 16:4:1), m/n = 4,
  // mn/k^2 = 64 — all three regimes reachable with executable P.
  const core::Shape shape{1536, 384, 96};
  struct Row {
    i64 P;
    core::Grid3 grid;
  };
  const Row rows[] = {
      {2, {2, 1, 1}},   {4, {4, 1, 1}},                      // case 1
      {16, {8, 2, 1}},  {36, {12, 3, 1}}, {64, {16, 4, 1}},  // case 2
      {512, {32, 8, 2}},                                     // case 3
  };
  Table table({"P", "regime", "grid", "leading term", "measured words",
               "measured/leading", "Thm3 constant", "bound attained"});
  for (const Row& row : rows) {
    const auto bound =
        core::memory_independent_bound(shape, static_cast<double>(row.P));
    mm::Grid3dConfig cfg{shape, row.grid};
    const mm::RunReport report = mm::run_grid3d(cfg, /*verify=*/false);
    const double measured =
        static_cast<double>(report.measured_critical_recv);
    table.add_row(
        {Table::fmt_int(row.P),
         std::to_string(static_cast<int>(bound.regime)) + "D",
         std::to_string(row.grid.p1) + "x" + std::to_string(row.grid.p2) +
             "x" + std::to_string(row.grid.p3),
         Table::fmt(bound.leading_term, 1), Table::fmt(measured, 1),
         Table::fmt(measured / bound.leading_term, 4),
         Table::fmt(bound.constant, 0),
         std::abs(measured - bound.words) <= 1e-9 * bound.words
             ? "exactly"
             : Table::fmt(measured / std::max(1.0, bound.words), 6)});
  }
  table.print(std::cout);
  std::cout << "\nNote: measured/leading < constant because the bound "
               "subtracts the owned\ndata (mn+mk+nk)/P; the 'bound attained' "
               "column compares against the full\nTheorem 3 expression and "
               "shows exact equality.\n";
}

/// The constants as ratios: how much each prior result under-estimates the
/// true communication requirement at a representative point per regime.
void print_improvement_factors() {
  std::cout << "\n=== Improvement factors of Theorem 3 over prior bounds "
               "===\n\n";
  Table table({"regime", "vs Aggarwal'90", "vs Irony'04", "vs Demmel'13"});
  const auto rows = core::table1_rows();
  for (core::RegimeCase regime : {core::RegimeCase::kOneD,
                                  core::RegimeCase::kTwoD,
                                  core::RegimeCase::kThreeD}) {
    const double ours = core::theorem3_2022().constant(regime).value();
    auto factor = [&](const core::PriorBoundRow& row) -> std::string {
      const auto c = row.constant(regime);
      return c.has_value() ? Table::fmt(ours / c.value(), 3) + "x" : "-";
    };
    table.add_row({std::to_string(static_cast<int>(regime)), factor(rows[0]),
                   factor(rows[1]), factor(rows[2])});
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  print_constants_table();
  print_attainment_sweep();
  print_improvement_factors();
  return 0;
}
