// bench_tightness — the §5.2 tightness claim, swept: for shapes and
// processor counts where the §5.2 grid is integral and divides the
// dimensions, the *executed* communication of Algorithm 1 equals the
// Theorem 3 lower bound exactly (difference identically zero), across all
// three regimes and several matrix orientations.
#include <iostream>

#include "core/bounds.hpp"
#include "core/cost_eq3.hpp"
#include "core/grid.hpp"
#include "matmul/runner.hpp"
#include "util/table.hpp"

using namespace camb;

namespace {

struct Case {
  const char* label;
  core::Shape shape;
  i64 P;
};

}  // namespace

int main() {
  // Executed cases (modest sizes: correctness-verified runs).
  const Case executed_cases[] = {
      {"1D, P=2", {384, 96, 24}, 2},
      {"1D, P=3", {384, 96, 24}, 3},
      {"1D/2D boundary, P=4", {384, 96, 24}, 4},
      {"2D, P=16", {384, 96, 24}, 16},
      {"2D, P=36", {384, 96, 24}, 36},
      {"2D/3D boundary, P=64", {384, 96, 24}, 64},
      {"3D, P=512 (scaled paper shape)", {1536, 384, 96}, 512},
      {"square 3D, P=8", {96, 96, 96}, 8},
      {"square 3D, P=64", {96, 96, 96}, 64},
      {"permuted (k,n,m), P=4", {24, 96, 384}, 4},
      {"permuted (n,k,m), P=16", {96, 24, 384}, 16},
  };

  std::cout << "=== Tightness: executed Algorithm 1 vs Theorem 3 ===\n"
            << "(bound attained means measured - bound == 0 words)\n\n";
  Table table({"case", "shape", "grid", "measured words", "Thm3 bound",
               "difference", "verified"});
  bool all_tight = true;
  for (const Case& c : executed_cases) {
    const core::Grid3 grid = core::exact_optimal_grid(c.shape, c.P);
    mm::Grid3dConfig cfg{c.shape, grid};
    const mm::RunReport report = mm::run_grid3d(cfg, /*verify=*/true);
    const double diff =
        static_cast<double>(report.measured_critical_recv) -
        report.lower_bound_words;
    // Attained up to the fp rounding of the bound's fractional powers.
    all_tight &= std::abs(diff) <= 1e-9 * report.lower_bound_words;
    table.add_row(
        {c.label,
         std::to_string(c.shape.n1) + "x" + std::to_string(c.shape.n2) + "x" +
             std::to_string(c.shape.n3),
         std::to_string(grid.p1) + "x" + std::to_string(grid.p2) + "x" +
             std::to_string(grid.p3),
         Table::fmt_int(report.measured_critical_recv),
         Table::fmt(report.lower_bound_words, 1), Table::fmt(diff, 1),
         report.max_abs_error < 1e-10 ? "yes" : "NO"});
  }
  table.print(std::cout);
  std::cout << (all_tight ? "\nAll executed cases attain the bound exactly."
                          : "\nSOME CASE MISSED THE BOUND — investigate!")
            << "\n";

  // Analytic sweep at the paper's full dimensions: eq. 3 on the §5.2 grid
  // equals Theorem 3 for every P where the grid is integral.
  std::cout << "\n=== Analytic sweep at full paper dimensions (9600 x 2400 x "
               "600) ===\n\n";
  const core::Shape paper{9600, 2400, 600};
  Table sweep({"P", "regime", "grid", "eq.3 words", "Thm3 bound", "ratio"});
  int integral = 0;
  for (i64 P = 1; P <= 1 << 20; P *= 2) {
    core::Grid3 grid;
    try {
      grid = core::exact_optimal_grid(paper, P);
    } catch (const Error&) {
      continue;  // §5.2 grid not integral at this P
    }
    ++integral;
    const double cost = core::alg1_cost_words(paper, grid);
    const auto bound =
        core::memory_independent_bound(paper, static_cast<double>(P));
    sweep.add_row({Table::fmt_int(P),
                   std::to_string(static_cast<int>(bound.regime)) + "D",
                   std::to_string(grid.p1) + "x" + std::to_string(grid.p2) +
                       "x" + std::to_string(grid.p3),
                   Table::fmt(cost, 1), Table::fmt(bound.words, 1),
                   bound.words > 0 ? Table::fmt(cost / bound.words, 9)
                                   : "- (both 0)"});
  }
  sweep.print(std::cout);
  std::cout << "\n(" << integral
            << " power-of-two processor counts admit an integral section-5.2 "
               "grid; the\nratio is identically 1 at each.)\n";
  return 0;
}
