// bench_hotpath — the wall-clock baseline for the hot-path overhaul
// (pooled payload buffers, bucketed mailboxes, register-blocked GEMM).
//
// Methodology.  This VM class shows CPU-speed drift of 2x and more across
// minutes, so cross-binary or cross-run comparisons are meaningless.  Every
// before/after ratio reported here is measured WITHIN this binary,
// interleaved (A, B, A, B, ...), best-of-N per side:
//
//   * "before" mailbox  = a faithful copy of the pre-overhaul single-deque
//     mailbox, compiled in this translation unit at the build's default
//     flags (the flags the seed library shipped with);
//   * "before" kernel   = a faithful copy of the pre-overhaul tiled triple
//     loop, ditto;
//   * "after"           = the library's current Mailbox / gemm_accumulate
//     exactly as linked into every test and experiment.
//
// The 32-seed perturbed stress sweep is end-to-end (the whole current
// stack); it cannot be A/B'd within one binary, so its JSON entry carries
// the recorded seed-build measurement and a drift caveat instead of a
// within-binary ratio.
//
// Usage: bench_hotpath [--quick] [--out PATH]
//   --quick  cut reps/iterations ~10x (the CI smoke configuration)
//   --out    write the JSON report to PATH (default: BENCH_PR5.json)
#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "machine/machine.hpp"
#include "matmul/algorithm_registry.hpp"
#include "matmul/local_gemm.hpp"
#include "matmul/runner.hpp"

namespace {

using namespace camb;
using Clock = std::chrono::steady_clock;

double secs(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

// ---------------------------------------------------------------------------
// "Before" mailbox: the pre-overhaul implementation, verbatim modulo the
// payload type staying std::vector<double> (as it was).
// ---------------------------------------------------------------------------

struct LegacyMessage {
  int src = -1;
  int tag = 0;
  double depart_time = 0.0;
  std::vector<double> payload;
};

class LegacyMailbox {
 public:
  void push(LegacyMessage msg, int reorder_skip = 0) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.push_back(std::move(msg));
      auto pos = std::prev(queue_.end());
      while (reorder_skip > 0 && pos != queue_.begin()) {
        auto prev = std::prev(pos);
        if (prev->src == pos->src && prev->tag == pos->tag) break;
        std::iter_swap(prev, pos);
        pos = prev;
        --reorder_skip;
      }
    }
    cv_.notify_all();
  }

  LegacyMessage pop_matching(int src, int tag) {
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if (it->src == src && it->tag == tag) {
          LegacyMessage out = std::move(*it);
          queue_.erase(it);
          return out;
        }
      }
      cv_.wait(lock);
    }
  }

  std::size_t pending() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<LegacyMessage> queue_;
};

// ---------------------------------------------------------------------------
// "Before" kernel: the pre-overhaul tiled i-k-j triple loop, verbatim.
// ---------------------------------------------------------------------------

constexpr i64 kLegacyTile = 64;

void legacy_gemm(const double* a, const double* b, double* c, i64 rows,
                 i64 inner, i64 cols) {
  for (i64 i0 = 0; i0 < rows; i0 += kLegacyTile) {
    const i64 imax = std::min(i0 + kLegacyTile, rows);
    for (i64 k0 = 0; k0 < inner; k0 += kLegacyTile) {
      const i64 kmax = std::min(k0 + kLegacyTile, inner);
      for (i64 j0 = 0; j0 < cols; j0 += kLegacyTile) {
        const i64 jmax = std::min(j0 + kLegacyTile, cols);
        for (i64 i = i0; i < imax; ++i) {
          for (i64 k = k0; k < kmax; ++k) {
            const double aik = a[i * inner + k];
            const double* brow = b + k * cols;
            double* crow = c + i * cols;
            for (i64 j = j0; j < jmax; ++j) crow[j] += aik * brow[j];
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Mailbox benchmark.  The hot receive pattern of a P-rank collective: the
// mailbox holds a standing backlog of messages from many other sources
// while pop_matching targets one envelope.  The legacy deque scans the
// whole backlog per pop; the bucketed mailbox scans one source's bucket.
// A zero-backlog ping-pong is measured too as the structural lower bound.
// ---------------------------------------------------------------------------

struct MailboxRates {
  double backlog_msgs_per_sec = 0.0;
  double pingpong_msgs_per_sec = 0.0;
};

template <class MessageT>
MessageT make_msg(int src, int tag, std::vector<double> payload) {
  MessageT msg;
  msg.src = src;
  msg.tag = tag;
  msg.payload = std::move(payload);
  return msg;
}

template <class MailboxT, class MessageT>
MailboxRates bench_mailbox_one(int iters, int backlog_sources,
                               int backlog_per_source, int rounds) {
  const std::size_t words = 64;
  MailboxRates best;
  for (int r = 0; r < rounds; ++r) {
    // Backlog scenario.
    {
      MailboxT box;
      for (int s = 1; s <= backlog_sources; ++s) {
        for (int m = 0; m < backlog_per_source; ++m) {
          box.push(make_msg<MessageT>(s, 7, std::vector<double>(words, 1.0)));
        }
      }
      std::vector<double> payload(words, 2.0);
      const auto t0 = Clock::now();
      for (int i = 0; i < iters; ++i) {
        box.push(make_msg<MessageT>(0, 7, std::move(payload)));
        payload = std::move(box.pop_matching(0, 7).payload);
      }
      const auto t1 = Clock::now();
      best.backlog_msgs_per_sec =
          std::max(best.backlog_msgs_per_sec, iters / secs(t0, t1));
    }
    // Ping-pong scenario (empty queue).
    {
      MailboxT box;
      std::vector<double> payload(words, 2.0);
      const auto t0 = Clock::now();
      for (int i = 0; i < iters; ++i) {
        box.push(make_msg<MessageT>(0, 7, std::move(payload)));
        payload = std::move(box.pop_matching(0, 7).payload);
      }
      const auto t1 = Clock::now();
      best.pingpong_msgs_per_sec =
          std::max(best.pingpong_msgs_per_sec, iters / secs(t0, t1));
    }
  }
  return best;
}

// The end-to-end machine path (threads, network accounting, pools): absolute
// throughput of a P-rank message ring, current stack only.
double bench_machine_ring(int rounds) {
  const int kP = 8;
  const i64 words = 64;
  Machine machine(kP);
  const auto t0 = Clock::now();
  machine.run([&](RankCtx& ctx) {
    const int me = ctx.rank(), p = ctx.nprocs();
    std::vector<double> payload(static_cast<std::size_t>(words), 1.0);
    for (int r = 0; r < rounds; ++r) {
      ctx.send((me + 1) % p, r % 1000, std::move(payload));
      payload = ctx.recv((me + p - 1) % p, r % 1000);
    }
    ctx.barrier();
  });
  const auto t1 = Clock::now();
  return static_cast<double>(kP) * rounds / secs(t0, t1);
}

// ---------------------------------------------------------------------------
// GEMM benchmark: interleaved best-of-N GFLOP/s per shape and side.
// ---------------------------------------------------------------------------

struct GemmResult {
  i64 n = 0;
  double before_gflops = 0.0;
  double after_gflops = 0.0;
};

GemmResult bench_gemm_shape(i64 n, int reps, int rounds) {
  MatrixD a(n, n), b(n, n), c(n, n);
  a.fill_indexed(0, 0);
  b.fill_indexed(1, 1);
  const double flops = 2.0 * static_cast<double>(n) * n * n * reps;
  GemmResult out;
  out.n = n;
  // Warm both paths once, then alternate A/B so CPU-speed drift hits both
  // sides equally; keep the best rate each side achieved.
  legacy_gemm(a.data(), b.data(), c.data(), n, n, n);
  mm::gemm_accumulate(a, b, c);
  for (int r = 0; r < rounds; ++r) {
    auto t0 = Clock::now();
    for (int i = 0; i < reps; ++i) {
      legacy_gemm(a.data(), b.data(), c.data(), n, n, n);
    }
    auto t1 = Clock::now();
    out.before_gflops = std::max(out.before_gflops, flops / secs(t0, t1) / 1e9);
    t0 = Clock::now();
    for (int i = 0; i < reps; ++i) mm::gemm_accumulate(a, b, c);
    t1 = Clock::now();
    out.after_gflops = std::max(out.after_gflops, flops / secs(t0, t1) / 1e9);
  }
  return out;
}

// ---------------------------------------------------------------------------
// End-to-end: the 32-seed perturbed stress sweep (test_stress_perturbed's
// exact recipe), wall-clocked on the current stack.
// ---------------------------------------------------------------------------

double bench_perturbed_sweep(int seeds, int rounds) {
  using camb::core::Shape;
  struct Case {
    Shape shape;
    i64 p;
  };
  const Case cases[] = {{{12, 8, 6}, 4}, {{12, 8, 6}, 8}, {{16, 16, 16}, 8},
                        {{13, 7, 5}, 4}, {{9, 14, 3}, 6}, {{24, 6, 10}, 9}};
  double best = 1e300;
  for (int r = 0; r < rounds; ++r) {
    const auto t0 = Clock::now();
    for (int seed = 0; seed < seeds; ++seed) {
      mm::RunOptions opts = mm::RunOptions::verified(mm::VerifyMode::kReference);
      opts.perturb.profile = "heavy";
      opts.perturb.master_seed = 0xC0FFEE;
      opts.perturb.fault_seed_override = 1000 + static_cast<std::uint64_t>(seed);
      for (const auto& c : cases) {
        for (const auto& algorithm : mm::algorithm_registry()) {
          if (!algorithm.supports(c.shape, c.p)) continue;
          (void)algorithm.run_opts(c.shape, c.p, opts);
        }
      }
    }
    const auto t1 = Clock::now();
    best = std::min(best, secs(t0, t1));
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_PR5.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: bench_hotpath [--quick] [--out PATH]\n");
      return 2;
    }
  }

  const int mbx_iters = quick ? 20000 : 200000;
  const int mbx_rounds = quick ? 2 : 4;
  const int gemm_rounds = quick ? 2 : 6;
  const int ring_rounds = quick ? 500 : 4000;
  const int sweep_seeds = quick ? 4 : 32;
  const int sweep_rounds = quick ? 1 : 3;

  std::printf("bench_hotpath (%s mode)\n", quick ? "quick" : "full");
  std::printf("interleaved best-of-N within one binary; see file header for"
              " methodology\n\n");

  // --- mailbox ---
  const MailboxRates before_mbx =
      bench_mailbox_one<LegacyMailbox, LegacyMessage>(mbx_iters, 63, 4,
                                                      mbx_rounds);
  const MailboxRates after_mbx =
      bench_mailbox_one<Mailbox, Message>(mbx_iters, 63, 4, mbx_rounds);
  const double ring_rate = bench_machine_ring(ring_rounds);
  std::printf("mailbox matched-pop throughput, 63-source backlog:\n");
  std::printf("  before %12.0f msgs/s   after %12.0f msgs/s   (%.2fx)\n",
              before_mbx.backlog_msgs_per_sec, after_mbx.backlog_msgs_per_sec,
              after_mbx.backlog_msgs_per_sec / before_mbx.backlog_msgs_per_sec);
  std::printf("mailbox ping-pong (no backlog):\n");
  std::printf("  before %12.0f msgs/s   after %12.0f msgs/s   (%.2fx)\n",
              before_mbx.pingpong_msgs_per_sec, after_mbx.pingpong_msgs_per_sec,
              after_mbx.pingpong_msgs_per_sec /
                  before_mbx.pingpong_msgs_per_sec);
  std::printf("machine ring (P=8, end-to-end): %12.0f msgs/s\n\n", ring_rate);

  // --- GEMM ---
  std::vector<GemmResult> gemm_results;
  for (i64 n : {128, 256, 512}) {
    const int reps = n >= 512 ? (quick ? 2 : 4) : (quick ? 6 : 12);
    gemm_results.push_back(bench_gemm_shape(n, reps, gemm_rounds));
    const GemmResult& g = gemm_results.back();
    std::printf("gemm n=%-4lld before %6.2f GFLOP/s   after %6.2f GFLOP/s"
                "   (%.2fx)\n",
                static_cast<long long>(g.n), g.before_gflops, g.after_gflops,
                g.after_gflops / g.before_gflops);
  }

  // --- stress sweep ---
  const double sweep_sec = bench_perturbed_sweep(sweep_seeds, sweep_rounds);
  std::printf("\nperturbed stress sweep (%d seeds): %.3f s (best of %d)\n",
              sweep_seeds, sweep_sec, sweep_rounds);

  // --- JSON report ---
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"hotpath\",\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", quick ? "quick" : "full");
  std::fprintf(f,
               "  \"methodology\": \"before/after interleaved best-of-N in "
               "one binary; 'before' = faithful copies of the pre-overhaul "
               "mailbox and kernel at the seed's default flags; VM clock "
               "drift makes cross-binary numbers unusable\",\n");
  std::fprintf(f, "  \"mailbox\": {\n");
  std::fprintf(f, "    \"workload\": \"matched pop with 63-source x4 standing "
                  "backlog, 64-word payloads\",\n");
  std::fprintf(f, "    \"before_msgs_per_sec\": %.0f,\n",
               before_mbx.backlog_msgs_per_sec);
  std::fprintf(f, "    \"after_msgs_per_sec\": %.0f,\n",
               after_mbx.backlog_msgs_per_sec);
  std::fprintf(f, "    \"speedup\": %.3f,\n",
               after_mbx.backlog_msgs_per_sec /
                   before_mbx.backlog_msgs_per_sec);
  std::fprintf(f, "    \"pingpong_before_msgs_per_sec\": %.0f,\n",
               before_mbx.pingpong_msgs_per_sec);
  std::fprintf(f, "    \"pingpong_after_msgs_per_sec\": %.0f,\n",
               after_mbx.pingpong_msgs_per_sec);
  std::fprintf(f, "    \"machine_ring_p8_msgs_per_sec\": %.0f\n", ring_rate);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"gemm\": [\n");
  for (std::size_t i = 0; i < gemm_results.size(); ++i) {
    const GemmResult& g = gemm_results[i];
    std::fprintf(f,
                 "    {\"n\": %lld, \"before_gflops\": %.3f, "
                 "\"after_gflops\": %.3f, \"speedup\": %.3f}%s\n",
                 static_cast<long long>(g.n), g.before_gflops, g.after_gflops,
                 g.after_gflops / g.before_gflops,
                 i + 1 < gemm_results.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"stress_sweep\": {\n");
  std::fprintf(f, "    \"seeds\": %d,\n", sweep_seeds);
  std::fprintf(f, "    \"current_best_sec\": %.3f,\n", sweep_sec);
  std::fprintf(f, "    \"seed_build_interleaved_best_sec\": 0.226,\n");
  std::fprintf(f,
               "    \"note\": \"seed baseline measured by running the seed "
               "build (git 40aba39) and this build alternately on the same "
               "host in one session, best of 5 interleaved pairs (seed "
               "0.226-0.250 s vs current 0.111-0.116 s); within-binary "
               "mailbox/gemm ratios above are exact, this pair is the "
               "end-to-end wall-clock check\"\n");
  std::fprintf(f, "  }\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
