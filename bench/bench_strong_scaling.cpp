// bench_strong_scaling — the §6.2 limited-memory analysis: for a fixed
// problem and per-processor memory M, sweep P and print the
// memory-dependent bound 2mnk/(P sqrt(M)), the memory-independent Theorem 3
// bound, which one binds, and the predicted crossover points.
//
// Reproduces the strong-scaling picture of Ballard et al. 2012 with this
// paper's tightened constants: perfect strong scaling (communication
// ~ 1/P) holds while the memory-dependent bound dominates, i.e. up to
// P = (8/27) mnk / M^{3/2}; past it, communication scales as P^{-2/3}.
#include <algorithm>
#include <cmath>
#include <iostream>

#include "core/cost_eq3.hpp"
#include "util/table.hpp"

using namespace camb;

namespace {

void sweep(const char* label, double m, double n, double k, double M) {
  std::cout << "--- " << label << ": m=" << m << " n=" << n << " k=" << k
            << ", M=" << Table::fmt_sci(M, 1) << " words ---\n";
  const double p_min_fit = (m * n + m * k + n * k) / M;
  const double crossover = core::memory_dependent_dominance_threshold(m, n, k, M);
  std::cout << "min P to fit the data: " << Table::fmt(p_min_fit, 1)
            << "; perfect-strong-scaling limit P = 8/27 mnk/M^1.5 = "
            << Table::fmt(crossover, 1) << "\n\n";

  std::vector<double> Ps;
  const double p_start = std::max(1.0, std::floor(p_min_fit));
  const double p_end = std::max({64 * crossover, 1024 * p_start, 1024.0});
  for (double P = p_start; P <= p_end; P *= 2) Ps.push_back(P);
  const auto points = core::scaling_sweep(m, n, k, M, Ps);
  Table table({"P", "regime", "mem-dep bound", "mem-indep bound", "binding",
               "scaling vs prev"});
  double prev_bound = -1, prev_P = -1;
  const char* regime_names[] = {"", "1D", "2D", "3D"};
  for (const auto& pt : points) {
    std::string scaling = "-";
    if (prev_bound > 0) {
      // Exponent alpha in bound ~ P^-alpha between consecutive points.
      const double exponent = std::log(pt.bound / prev_bound) /
                              std::log(pt.P / prev_P);
      scaling = "P^" + Table::fmt(exponent, 2);
    }
    table.add_row({Table::fmt_sci(pt.P, 1),
                   regime_names[static_cast<int>(pt.regime)],
                   Table::fmt_sci(pt.mem_dependent, 3),
                   Table::fmt_sci(pt.mem_independent, 3),
                   pt.mem_dependent > pt.mem_independent ? "mem-dep"
                                                         : "mem-indep",
                   scaling});
    prev_bound = pt.bound;
    prev_P = pt.P;
  }
  table.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main() {
  std::cout << "=== Strong scaling under limited memory (section 6.2) ===\n\n"
            << "While the memory-dependent bound binds, doubling P halves "
               "per-processor\ncommunication (bound ~ 1/P, perfect strong "
               "scaling); once the memory-independent\nbound binds, the "
               "exponent degrades to 2/3 (3D regime) or 1/2 (2D regime).\n\n";
  // Square problem: the classical 2.5D strong-scaling picture.
  sweep("square", 8192, 8192, 8192, 1e6);
  // Rectangular problem spanning all three regimes.
  sweep("rectangular 16:4:1", 38400, 9600, 2400, 1e7);
  // Memory-rich: the memory-dependent bound never dominates (cases 1-2
  // tight with no assumption, as section 6.2 proves).
  sweep("memory-rich square", 4096, 4096, 4096, 1e9);
  return 0;
}
