// bench_figure2 — regenerates Figure 2 of the paper: the example
// parallelizations of multiplying a 9600x2400 matrix A by a 2400x600 matrix
// B with P in {3, 36, 512}.
//
// For each P it reports (analytically, at the paper's exact dimensions):
//   * the §5.2 optimal processor grid (3x1x1, 12x3x1, 32x8x2 — the figure's
//     panels (a), (b), (c)),
//   * the local iteration-space block per processor,
//   * which matrices are communicated (the figure's narrative), with the
//     per-matrix word counts,
// and then validates the analytic numbers by executing Algorithm 1 on the
// simulated machine — at the full dimensions for P = 3 and 36, and at an
// aspect-preserving 1/8 scale for P = 512 (plus exact analytic at full
// scale), keeping the run fast.
#include <iostream>

#include "core/bounds.hpp"
#include "core/cost_eq3.hpp"
#include "core/grid.hpp"
#include "matmul/runner.hpp"
#include "util/table.hpp"

using namespace camb;

namespace {

void analytic_panel(const core::Shape& shape, i64 P) {
  const core::Grid3 grid = core::exact_optimal_grid(shape, P);
  const auto bound =
      core::memory_independent_bound(shape, static_cast<double>(P));
  const auto breakdown = core::alg1_comm_breakdown(shape, grid);
  std::cout << "P = " << P << ": optimal grid " << grid.p1 << " x " << grid.p2
            << " x " << grid.p3 << " (case "
            << static_cast<int>(bound.regime) << ", "
            << (grid.p2 == 1 && grid.p3 == 1
                    ? "1D"
                    : (grid.p3 == 1 || grid.p2 == 1 || grid.p1 == 1 ? "2D"
                                                                    : "3D"))
            << " grid)\n"
            << "  local block: " << shape.n1 / grid.p1 << " x "
            << shape.n2 / grid.p2 << " x " << shape.n3 / grid.p3 << "\n";
  Table table({"matrix", "collective", "words/processor", "communicated?"});
  table.add_row({"A (9600x2400)", "All-Gather over p3",
                 Table::fmt(breakdown.allgather_a, 1),
                 breakdown.allgather_a > 0 ? "yes" : "no"});
  table.add_row({"B (2400x600)", "All-Gather over p1",
                 Table::fmt(breakdown.allgather_b, 1),
                 breakdown.allgather_b > 0 ? "yes" : "no"});
  table.add_row({"C (9600x600)", "Reduce-Scatter over p2",
                 Table::fmt(breakdown.reduce_scatter_c, 1),
                 breakdown.reduce_scatter_c > 0 ? "yes" : "no"});
  table.print(std::cout);
  std::cout << "  total communication: " << Table::fmt(breakdown.total(), 1)
            << " words; Theorem 3 bound: " << Table::fmt(bound.words, 1)
            << " words; ratio "
            << Table::fmt(breakdown.total() / bound.words, 6) << "\n\n";
}

void executed_panel(const core::Shape& shape, const core::Grid3& grid,
                    const std::string& label) {
  mm::Grid3dConfig cfg{shape, grid};
  const mm::RunReport report = mm::run_grid3d(cfg, /*verify=*/false);
  const double bound = report.lower_bound_words;
  std::cout << "  " << label << ": grid " << grid.p1 << "x" << grid.p2 << "x"
            << grid.p3 << ", measured " << report.measured_critical_recv
            << " words (prediction " << report.predicted_critical_recv
            << ", bound " << Table::fmt(bound, 1) << ", ratio "
            << Table::fmt(static_cast<double>(report.measured_critical_recv) /
                              bound,
                          6)
            << ")\n";
  std::cout << "    per phase:";
  for (const auto& [phase, words] : report.phase_recv) {
    if (words > 0) std::cout << " " << phase << "=" << words;
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  const core::Shape paper{9600, 2400, 600};
  std::cout << "=== Figure 2: example parallelizations of 9600x2400 * "
               "2400x600 ===\n"
            << "regime boundaries: m/n = 4, mn/k^2 = 64\n\n"
            << "--- analytic panels at the paper's exact dimensions ---\n";
  analytic_panel(paper, 3);    // (a) 1D
  analytic_panel(paper, 36);   // (b) 2D
  analytic_panel(paper, 512);  // (c) 3D

  std::cout << "--- executed validation on the simulated machine ---\n"
            << "1/4 scale (2400 x 600 x 150), preserving the 16:4:1 aspect\n"
            << "(communication counts scale exactly by 1/16; the grids and\n"
            << " ratios are identical to full scale):\n";
  const core::Shape quarter{2400, 600, 150};
  executed_panel(quarter, core::Grid3{3, 1, 1}, "P=3  (panel a)");
  executed_panel(quarter, core::Grid3{12, 3, 1}, "P=36 (panel b)");
  executed_panel(quarter, core::Grid3{32, 8, 2}, "P=512 (panel c)");
  std::cout
      << "\nThe executed/bound ratio is 1 in every panel (exactly in panels a "
         "and b; in\npanel c the bound itself is fractional — 210937.5 words "
         "at full scale — so an\nintegral data distribution can only attain "
         "it to within one word per collective,\nwhich is what the measured "
         "count shows).  Algorithm 1 attains Theorem 3,\nreproducing the "
         "figure's three parallelizations.\n";
  return 0;
}
