// bench_abft_overhead — what fault tolerance costs against Theorem 3: for
// each processor count the checksum-augmented algorithms run fault-free
// (f = 0) and with one injected crash (f = 1), and the table reports the
// measured critical-path words divided by the memory-independent lower
// bound.  At f = 0 the measured traffic must equal the exact closed-form
// prediction (base algorithm + encode reduces + shrink agreement — see
// docs/THEORY.md), so the fault-tolerance tax is fully accounted, not
// approximated.
#include <iostream>

#include "core/bounds.hpp"
#include "core/grid.hpp"
#include "matmul/runner.hpp"
#include "util/table.hpp"

using namespace camb;

namespace {

struct Case {
  const char* algorithm;  // "summa_abft" | "grid3d_abft"
  core::Shape shape;
  i64 P;
};

mm::RunReport run_case(const Case& c, int crashes) {
  mm::RunOptions opts;
  opts.verify = mm::VerifyMode::kReference;
  if (crashes > 0) {
    // Crash rank 1 within its first few sends so the fault always fires.
    opts.crash.ranks = {1};
    opts.crash.max_send_position = 2;
  }
  if (std::string(c.algorithm) == "summa_abft") {
    const i64 g = isqrt(c.P);
    return mm::run_summa_abft(
        mm::SummaAbftConfig{mm::SummaConfig{c.shape, g}}, opts);
  }
  const core::Grid3 grid = core::best_integer_grid(c.shape, c.P);
  return mm::run_grid3d_abft(mm::Grid3dAbftConfig{mm::Grid3dConfig{c.shape, grid}},
                             opts);
}

}  // namespace

int main() {
  const Case cases[] = {
      {"grid3d_abft", {96, 96, 96}, 8},
      {"grid3d_abft", {96, 96, 96}, 27},
      {"grid3d_abft", {96, 96, 96}, 64},
      {"summa_abft", {96, 96, 96}, 64},
  };

  std::cout << "=== ABFT overhead vs the Theorem 3 bound ===\n"
            << "(f = crashed ranks; at f=0 measured must equal the closed-form "
               "prediction)\n\n";
  Table table({"algorithm", "P", "f", "measured words", "predicted", "Thm3 bound",
               "measured/bound", "verified"});
  bool all_exact = true;
  bool all_verified = true;
  for (const Case& c : cases) {
    for (int f = 0; f <= 1; ++f) {
      const mm::RunReport report = run_case(c, f);
      const bool exact =
          f != 0 || report.measured_critical_recv == report.predicted_words();
      all_exact &= exact;
      const bool ok = report.verified && report.max_abs_error == 0.0;
      all_verified &= ok;
      table.add_row({c.algorithm, Table::fmt_int(c.P), Table::fmt_int(f),
                     Table::fmt_int(report.measured_critical_recv),
                     f == 0 ? Table::fmt_int(
                                   static_cast<i64>(report.predicted_words()))
                            : "- (fault-free form)",
                     Table::fmt(report.lower_bound_words, 1),
                     Table::fmt(report.recovery.overhead_ratio, 4),
                     ok ? "bit-exact" : "NO"});
    }
  }
  table.print(std::cout);
  std::cout << (all_exact
                    ? "\nEvery f=0 run matches the closed-form prediction "
                      "exactly."
                    : "\nSOME f=0 RUN MISSED ITS PREDICTION — investigate!")
            << (all_verified ? "\nEvery run reconstructed C bit-identically."
                             : "\nSOME RUN FAILED VERIFICATION — investigate!")
            << "\n";
  return (all_exact && all_verified) ? 0 : 1;
}
