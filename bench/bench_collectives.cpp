// bench_collectives — the §5.1 collectives ablation, executed.
//
// (1) All-Gather and Reduce-Scatter algorithm variants: identical
//     (bandwidth-optimal) word counts, different latency (message counts) —
//     the "bidirectional exchange or recursive doubling/halving" remark.
// (2) Reduce-Scatter vs All-to-All for Algorithm 1's output collective: the
//     difference between Alg. 1 and Agarwal et al. 1995 — same bandwidth,
//     but All-to-All wastes latency and defers the reduction flops.
// (3) Naive compositions (reduce+bcast vs RS+AG allreduce) to show why the
//     bandwidth-optimal forms matter.
#include <iostream>
#include <numeric>

#include "collectives/allgather.hpp"
#include "collectives/allreduce.hpp"
#include "collectives/alltoall.hpp"
#include "collectives/bcast.hpp"
#include "collectives/coll_cost.hpp"
#include "collectives/reduce.hpp"
#include "collectives/reduce_scatter.hpp"
#include "collectives/tuning.hpp"
#include "collectives/registry.hpp"
#include "machine/machine.hpp"
#include "util/table.hpp"

using namespace camb;

namespace {

void variant_table(int p, i64 block) {
  std::cout << "--- All-Gather variants: p = " << p << ", block = " << block
            << " words ---\n";
  Table table({"variant", "recv words/rank", "messages/rank", "optimal (1-1/p)w"});
  const double optimal = (1.0 - 1.0 / p) * static_cast<double>(block * p);
  for (const auto& variant : coll::allgather_variants()) {
    if (!variant.supports(p)) continue;
    Machine machine(p);
    machine.run([&](RankCtx& ctx) {
      (void)coll::allgather_equal(
          coll::Comm::world(ctx),
          std::vector<double>(static_cast<std::size_t>(block)), variant.algo);
    });
    const auto totals = machine.stats().rank_total(0);
    table.add_row({variant.name, Table::fmt_int(totals.words_received()),
                   Table::fmt_int(totals.messages_sent),
                   Table::fmt(optimal, 1)});
  }
  table.print(std::cout);

  std::cout << "--- Reduce-Scatter variants: p = " << p << ", segment = "
            << block << " words ---\n";
  Table rs({"variant", "recv words/rank", "messages/rank", "optimal (1-1/p)w"});
  for (const auto& variant : coll::reduce_scatter_variants()) {
    if (!variant.supports(p)) continue;
    Machine machine(p);
    machine.run([&](RankCtx& ctx) {
      (void)coll::reduce_scatter_equal(
          coll::Comm::world(ctx),
          std::vector<double>(static_cast<std::size_t>(block * p), 1.0),
          variant.algo);
    });
    const auto totals = machine.stats().rank_total(0);
    rs.add_row({variant.name, Table::fmt_int(totals.words_received()),
                Table::fmt_int(totals.messages_sent), Table::fmt(optimal, 1)});
  }
  rs.print(std::cout);
  std::cout << "\n";
}

void rs_vs_alltoall(int p, i64 seg) {
  std::cout << "--- Reduce-Scatter vs All-to-All (+local sum): p = " << p
            << ", segment = " << seg << " words ---\n"
            << "(the Alg. 1 vs Agarwal et al. 1995 difference, section 5.1)\n";
  Table table({"approach", "recv words/rank", "messages/rank"});
  {
    Machine machine(p);
    machine.run([&](RankCtx& ctx) {
      (void)coll::reduce_scatter_equal(
          coll::Comm::world(ctx),
          std::vector<double>(static_cast<std::size_t>(seg * p), 1.0));
    });
    const auto totals = machine.stats().rank_total(0);
    table.add_row({"Reduce-Scatter (Alg. 1)",
                   Table::fmt_int(totals.words_received()),
                   Table::fmt_int(totals.messages_sent)});
  }
  {
    Machine machine(p);
    machine.run([&](RankCtx& ctx) {
      // Personalized exchange of the partial segments, then local sum.
      std::vector<std::vector<double>> blocks(static_cast<std::size_t>(p));
      for (auto& b : blocks) {
        b.assign(static_cast<std::size_t>(seg), 1.0);
      }
      const auto received = coll::alltoall(coll::Comm::world(ctx), blocks);
      std::vector<double> sum(static_cast<std::size_t>(seg), 0.0);
      for (const auto& b : received) {
        for (std::size_t j = 0; j < sum.size(); ++j) sum[j] += b[j];
      }
    });
    const auto totals = machine.stats().rank_total(0);
    table.add_row({"All-to-All + local sum (Agarwal'95)",
                   Table::fmt_int(totals.words_received()),
                   Table::fmt_int(totals.messages_sent)});
  }
  {
    Machine machine(p);
    machine.run([&](RankCtx& ctx) {
      std::vector<std::vector<double>> blocks(
          static_cast<std::size_t>(p),
          std::vector<double>(static_cast<std::size_t>(seg), 1.0));
      const auto received = coll::alltoall(coll::Comm::world(ctx), blocks,
                                           coll::AlltoallAlgo::kBruck);
      std::vector<double> sum(static_cast<std::size_t>(seg), 0.0);
      for (const auto& b : received) {
        for (std::size_t j = 0; j < sum.size(); ++j) sum[j] += b[j];
      }
    });
    const auto totals = machine.stats().rank_total(0);
    table.add_row({"Bruck All-to-All + local sum (log-latency)",
                   Table::fmt_int(totals.words_received()),
                   Table::fmt_int(totals.messages_sent)});
  }
  table.print(std::cout);
  std::cout << "\n";
}

void allreduce_compositions(int p, i64 w) {
  std::cout << "--- All-Reduce compositions: p = " << p << ", w = " << w
            << " words ---\n";
  Table table({"approach", "recv words/rank (max)", "vs optimal 2(1-1/p)w"});
  const double optimal = 2.0 * (1.0 - 1.0 / p) * static_cast<double>(w);
  {
    Machine machine(p);
    machine.run([&](RankCtx& ctx) {
      (void)coll::allreduce(
          coll::Comm::world(ctx),
          std::vector<double>(static_cast<std::size_t>(w), 1.0));
    });
    const i64 worst = machine.stats().critical_path_received_words();
    table.add_row({"RS + AG (bandwidth-optimal)", Table::fmt_int(worst),
                   Table::fmt(static_cast<double>(worst) / optimal, 3) + "x"});
  }
  {
    Machine machine(p);
    machine.run([&](RankCtx& ctx) {
      const coll::Comm world = coll::Comm::world(ctx);
      std::vector<double> data(static_cast<std::size_t>(w), 1.0);
      auto root_sum = coll::reduce(world, 0, std::move(data));
      coll::bcast(world, 0, root_sum, w);
    });
    const i64 worst = machine.stats().critical_path_received_words();
    table.add_row({"reduce + bcast (naive)", Table::fmt_int(worst),
                   Table::fmt(static_cast<double>(worst) / optimal, 3) + "x"});
  }
  table.print(std::cout);
  std::cout << "\n";
}

}  // namespace

void tuning_crossover() {
  std::cout << "--- model-driven All-to-All selection (tuning.hpp) ---\n";
  const int p = 16;
  const coll::TuningParams params{1e-5, 1e-9};
  const double crossover = coll::alltoall_bruck_crossover_block(p, params);
  std::cout << "machine alpha=1e-5 s, beta=1e-9 s/word, p = " << p
            << ": predicted Bruck/pairwise crossover at block = "
            << Table::fmt(crossover, 1) << " words\n";
  Table table({"block words", "pairwise model s", "bruck model s", "choice"});
  for (i64 block : {16, 256, 1024, 4096, 65536}) {
    const double tp =
        coll::alltoall_model_time(p, block, coll::AlltoallAlgo::kPairwise, params);
    const double tb =
        coll::alltoall_model_time(p, block, coll::AlltoallAlgo::kBruck, params);
    table.add_row({Table::fmt_int(block), Table::fmt_sci(tp, 2),
                   Table::fmt_sci(tb, 2),
                   coll::choose_alltoall(p, block, params) ==
                           coll::AlltoallAlgo::kBruck
                       ? "bruck"
                       : "pairwise"});
  }
  table.print(std::cout);
  std::cout << "\n";
}

void bcast_pipelining() {
  std::cout << "--- broadcast: binomial vs pipelined ring (scheduled time, "
               "p = 8) ---\n"
            << "(alpha = 1e-5 s, beta = 1e-6 s/word; same words delivered "
               "either way)\n";
  const int p = 8;
  Table table({"payload words", "binomial s", "pipelined ring (32 seg) s",
               "winner"});
  for (i64 w : {4, 64, 1024, 16384, 262144}) {
    auto scheduled = [&](coll::BcastAlgo algo) {
      Machine machine(p);
      machine.set_time_params(AlphaBeta{1e-5, 1e-6});
      machine.run([&](RankCtx& ctx) {
        std::vector<double> data;
        if (ctx.rank() == 0) data.assign(static_cast<std::size_t>(w), 1.0);
        coll::bcast(coll::Comm::world(ctx), 0, data, w, algo, 32);
      });
      return machine.critical_path_time();
    };
    const double tb = scheduled(coll::BcastAlgo::kBinomial);
    const double tr = scheduled(coll::BcastAlgo::kPipelinedRing);
    table.add_row({Table::fmt_int(w), Table::fmt_sci(tb, 2),
                   Table::fmt_sci(tr, 2),
                   tb < tr ? "binomial" : "pipelined ring"});
  }
  table.print(std::cout);
  std::cout << "\nThe classic small/large-message crossover — visible only "
               "through the\nscheduled critical path, since both variants "
               "deliver identical word counts.\n\n";
}

int main() {
  std::cout << "=== Collectives ablation (section 5.1) ===\n\n";
  bcast_pipelining();
  variant_table(8, 1024);
  variant_table(12, 1024);  // non-power-of-two group
  rs_vs_alltoall(8, 1024);
  allreduce_compositions(16, 4096);
  tuning_crossover();
  std::cout << "Take-away: every variant hits the bandwidth-optimal "
               "(1 - 1/p) w words;\nrecursive variants need only ceil(log2 p) "
               "messages where the ring needs p - 1.\nAll-to-All matches "
               "Reduce-Scatter's bandwidth but not its latency profile, and\n"
               "naive reduce+bcast pays ~2x the optimal All-Reduce "
               "bandwidth at the root.\n";
  return 0;
}
