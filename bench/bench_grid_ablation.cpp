// bench_grid_ablation — how much the §5.2 grid choice matters.
//
// For representative (shape, P) points in each regime, rank every factor
// triple of P by its eq. 3 cost, and quantify the penalty of natural-but-
// wrong choices: a square 2D grid in the 1D regime, a cubic 3D grid in the
// 2D regime, etc.  Executed spot-checks confirm the analytic ranking.
#include <algorithm>
#include <iostream>

#include "core/bounds.hpp"
#include "core/cost_eq3.hpp"
#include "core/grid.hpp"
#include "matmul/runner.hpp"
#include "util/table.hpp"

using namespace camb;

namespace {

void ablate(const core::Shape& shape, i64 P, const char* regime_label) {
  const auto bound =
      core::memory_independent_bound(shape, static_cast<double>(P));
  struct Entry {
    core::Grid3 grid;
    double cost;
  };
  std::vector<Entry> entries;
  for (const core::Grid3& g : core::all_grids(P)) {
    entries.push_back({g, core::alg1_cost_words(shape, g)});
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.cost < b.cost; });
  std::cout << "--- " << regime_label << ": shape " << shape.n1 << "x"
            << shape.n2 << "x" << shape.n3 << ", P = " << P << " ("
            << entries.size() << " candidate grids) ---\n";
  Table table({"rank", "grid", "eq.3 words", "vs best", "vs bound"});
  const double best = entries.front().cost;
  // Best three and worst one (deduplicated for tiny candidate sets).
  std::vector<std::size_t> shown = {0, 1, 2, entries.size() - 1};
  shown.erase(std::unique(shown.begin(), shown.end()), shown.end());
  for (std::size_t idx : shown) {
    if (idx >= entries.size()) continue;
    const auto& e = entries[idx];
    table.add_row({idx + 1 == entries.size() ? "worst" : std::to_string(idx + 1),
                   std::to_string(e.grid.p1) + "x" + std::to_string(e.grid.p2) +
                       "x" + std::to_string(e.grid.p3),
                   Table::fmt(e.cost, 1), Table::fmt(e.cost / best, 3) + "x",
                   Table::fmt(e.cost / std::max(1.0, bound.words), 3) + "x"});
  }
  table.print(std::cout);
  std::cout << "\n";
}

void executed_spot_check() {
  std::cout << "--- executed spot-check: 1D regime, P = 4, shape 384x96x24 "
               "---\n";
  const core::Shape shape{384, 96, 24};
  Table table({"grid", "measured words", "vs bound"});
  for (const core::Grid3& grid :
       {core::Grid3{4, 1, 1}, core::Grid3{2, 2, 1}, core::Grid3{1, 2, 2},
        core::Grid3{1, 1, 4}}) {
    mm::Grid3dConfig cfg{shape, grid};
    const mm::RunReport report = mm::run_grid3d(cfg, false);
    table.add_row({std::to_string(grid.p1) + "x" + std::to_string(grid.p2) +
                       "x" + std::to_string(grid.p3),
                   Table::fmt_int(report.measured_critical_recv),
                   Table::fmt(static_cast<double>(
                                  report.measured_critical_recv) /
                                  report.lower_bound_words,
                              3) +
                       "x"});
  }
  table.print(std::cout);
  std::cout << "\nThe 4x1x1 grid (the section 5.2 choice for this regime) is "
               "measured at exactly\n1.000x the bound; every other "
               "orientation pays a multiple.\n";
}

}  // namespace

int main() {
  std::cout << "=== Grid-choice ablation (section 5.2) ===\n\n";
  const core::Shape paper{9600, 2400, 600};
  ablate(paper, 3, "1D regime");
  ablate(paper, 36, "2D regime");
  ablate(paper, 512, "3D regime");
  // A square problem: grid choice matters much less (all factorizations of
  // the cube are near-optimal), highlighting that aspect ratio drives the
  // case analysis.
  ablate(core::Shape{2400, 2400, 2400}, 64, "square problem");
  executed_spot_check();
  return 0;
}
