// bench_dtype — what the scalar substrate buys: f32 vs f64 local GEMM
// kernel throughput (the AVX2 8-wide ps micro-tile against the paired
// 4-wide pd one), and the end-to-end dtype sweep — every registry
// algorithm at f64/f32/i64/kahan with measured critical-path words pinned
// against the closed-form element predictions × the dtype's width factor.
//
// The sweep is exact, not sampled: a case passes only if measured words
// EQUAL predicted elements × sizeof(elem)/8 (+ the ABFT variants' fixed
// control words).  Any miss exits nonzero, so the perf leg doubles as a
// correctness gate like the SDC sweep.
//
// Usage: bench_dtype [--quick] [--out PATH]
//   --quick   fewer GEMM reps and sizes (the CI smoke mode)
//   --out     also emit a BENCH_PR8.json machine-readable report
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "matmul/algorithm_registry.hpp"
#include "matmul/local_gemm.hpp"
#include "matmul/runner.hpp"
#include "util/scalar.hpp"
#include "util/table.hpp"

using namespace camb;

namespace {

struct GemmResult {
  std::string dtype;
  i64 n = 0;
  double gflops = 0;
};

/// Best-of-reps Gflop/s of gemm_accumulate<T> on an n×n×n product.
template <typename T>
GemmResult time_gemm(i64 n, int reps) {
  Matrix<T> a(n, n), b(n, n), c(n, n);
  a.fill_indexed(0, 0);
  b.fill_indexed(1, 1);
  double best_s = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    mm::gemm_accumulate(a, b, c);
    const auto t1 = std::chrono::steady_clock::now();
    best_s = std::min(best_s, std::chrono::duration<double>(t1 - t0).count());
  }
  GemmResult res;
  res.dtype = ScalarTraits<T>::name;
  res.n = n;
  res.gflops = 2.0 * static_cast<double>(n) * static_cast<double>(n) *
               static_cast<double>(n) / best_s / 1e9;
  return res;
}

struct CaseResult {
  std::string algorithm;
  std::string dtype;
  i64 P = 0;
  double measured_words = 0;   // critical-path received words
  double predicted_words = 0;  // elements × width + control words
  double width = 0;            // sizeof(elem) / 8
  double vs_bound = 0;         // measured / dtype-scaled Theorem 3 bound
  bool exact = false;          // measured == predicted, verified
};

CaseResult run_case(const mm::AlgorithmInfo& algorithm, const core::Shape shape,
                    i64 P, DType dtype) {
  mm::RunOptions opts = mm::RunOptions::verified(mm::VerifyMode::kReference);
  opts.dtype = dtype;
  const mm::RunReport report = algorithm.run_opts(shape, P, opts);
  CaseResult res;
  res.algorithm = algorithm.name;
  res.dtype = dtype_name(dtype);
  res.P = P;
  res.measured_words = report.measured_critical_recv;
  res.predicted_words = report.predicted_words();
  res.width = dtype_width_words(dtype);
  res.vs_bound = report.lower_bound_words > 0
                     ? report.measured_critical_recv / report.lower_bound_words
                     : 0.0;
  res.exact = report.verified &&
              (report.predicted_critical_recv < 0 ||
               report.measured_critical_recv == report.predicted_words());
  return res;
}

void write_json(const std::string& path, const std::vector<GemmResult>& gemm,
                const std::vector<CaseResult>& rows, bool quick) {
  std::ofstream out(path);
  out << "{\n"
      << "  \"bench\": \"dtype\",\n"
      << "  \"mode\": \"" << (quick ? "quick" : "full") << "\",\n"
      << "  \"methodology\": \"gemm: best-of-reps wall clock of the "
         "register-blocked kernel (AVX2 where the host has it); sweep: "
         "every registry algorithm per dtype at shape 48x40x56, measured "
         "critical-path words pinned exactly against predicted elements x "
         "sizeof(elem)/8\",\n"
      << "  \"gemm\": [\n";
  for (std::size_t i = 0; i < gemm.size(); ++i) {
    out << "    {\"dtype\": \"" << gemm[i].dtype << "\", \"n\": " << gemm[i].n
        << ", \"gflops\": " << gemm[i].gflops << "}"
        << (i + 1 < gemm.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"cases\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const CaseResult& r = rows[i];
    out << "    {\"algorithm\": \"" << r.algorithm << "\", \"dtype\": \""
        << r.dtype << "\", \"procs\": " << r.P
        << ", \"measured_words\": " << r.measured_words
        << ", \"predicted_words\": " << r.predicted_words
        << ", \"width\": " << r.width << ", \"vs_bound\": " << r.vs_bound
        << ", \"exact\": " << (r.exact ? "true" : "false") << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }

  // --- f32 vs f64 kernel throughput -------------------------------------
  const std::vector<i64> sizes =
      quick ? std::vector<i64>{128, 256} : std::vector<i64>{128, 256, 384};
  const int reps = quick ? 3 : 7;
  std::vector<GemmResult> gemm;
  std::cout << "local GEMM kernel, f32 vs f64 (best of " << reps << "):\n";
  Table gemm_table({"n", "f64 Gflop/s", "f32 Gflop/s", "f32/f64"});
  for (i64 n : sizes) {
    const GemmResult f64 = time_gemm<double>(n, reps);
    const GemmResult f32 = time_gemm<float>(n, reps);
    gemm.push_back(f64);
    gemm.push_back(f32);
    gemm_table.add_row({Table::fmt_int(n), Table::fmt(f64.gflops, 2),
                        Table::fmt(f32.gflops, 2),
                        Table::fmt(f32.gflops / f64.gflops, 2)});
  }
  gemm_table.print(std::cout);

  // --- end-to-end dtype sweep -------------------------------------------
  const core::Shape shape{48, 40, 56};
  const i64 P = 16;
  const std::vector<DType> dtypes = {DType::kF64, DType::kF32, DType::kI64,
                                     DType::kKahan};
  std::vector<CaseResult> rows;
  bool all_exact = true;
  std::cout << "\nend-to-end dtype sweep, shape 48x40x56, P = " << P << ":\n";
  Table sweep({"algorithm", "dtype", "width", "measured w", "predicted w",
               "vs Thm3", "exact"});
  for (const auto& algorithm : mm::algorithm_registry()) {
    if (!algorithm.supports(shape, P)) continue;
    for (DType dtype : dtypes) {
      const CaseResult r = run_case(algorithm, shape, P, dtype);
      all_exact &= r.exact;
      rows.push_back(r);
      sweep.add_row({r.algorithm, r.dtype, Table::fmt(r.width, 2),
                     Table::fmt(r.measured_words, 1),
                     Table::fmt(r.predicted_words, 1),
                     Table::fmt(r.vs_bound, 4), r.exact ? "yes" : "NO"});
    }
  }
  sweep.print(std::cout);

  if (!out_path.empty()) {
    write_json(out_path, gemm, rows, quick);
    std::cout << "\nwrote " << out_path << "\n";
  }
  if (!all_exact) {
    std::cerr << "SOME CASE MISSED ITS WORD PREDICTION — investigate!\n";
    return 1;
  }
  std::cout << "every case matched predicted elements x width exactly\n";
  return 0;
}
