// bench_checkpoint_overhead — what checkpoint/restart costs against
// Theorem 3: grid3d on cube grids for P in {8, 27, 64}, fault-free (f = 0)
// and with one injected crash (f = 1), across commit intervals.  At f = 0
// the measured traffic must equal the exact closed-form prediction (base
// algorithm + commit tax + agreement flood — see docs/SIMULATOR.md), so the
// checkpoint tax is fully accounted, not approximated; crashed runs must
// still produce bit-identical output to the plain algorithm.
#include <iostream>

#include "core/bounds.hpp"
#include "core/grid.hpp"
#include "matmul/runner.hpp"
#include "util/table.hpp"

using namespace camb;

namespace {

mm::RunReport run_case(const core::Shape& shape, i64 P, i64 interval,
                       int crashes) {
  const core::Grid3 grid = core::best_integer_grid(shape, P);
  mm::RunOptions opts;
  opts.verify = mm::VerifyMode::kReference;
  if (interval > 0) {
    opts.checkpoint.interval = interval;
    opts.checkpoint.spares = crashes > 0 ? 1 : 0;
  }
  if (crashes > 0) {
    // Crash rank 1 within its first few sends so the fault always fires.
    opts.crash.ranks = {1};
    opts.crash.max_send_position = 2;
  }
  return mm::run_grid3d(mm::Grid3dConfig{shape, grid}, opts);
}

}  // namespace

int main() {
  const core::Shape shape{96, 96, 96};
  const i64 procs[] = {8, 27, 64};
  const i64 intervals[] = {1, 3};

  std::cout << "=== checkpoint/restart overhead vs the Theorem 3 bound ===\n"
            << "(grid3d, cube grids; f = crashed ranks; at f=0 measured must "
               "equal base + commit tax + flood exactly)\n\n";
  Table table({"P", "interval", "f", "measured words", "predicted",
               "ckpt tax", "Thm3 bound", "measured/bound", "verified"});
  bool all_exact = true;
  bool all_verified = true;
  for (const i64 P : procs) {
    const mm::RunReport plain = run_case(shape, P, 0, 0);
    for (const i64 interval : intervals) {
      for (int f = 0; f <= 1; ++f) {
        const mm::RunReport report = run_case(shape, P, interval, f);
        const bool exact = f != 0 || report.measured_critical_recv ==
                                         report.predicted_words();
        all_exact &= exact;
        const bool ok = report.verified &&
                        report.output_hash == plain.output_hash &&
                        report.max_abs_error == plain.max_abs_error;
        all_verified &= ok;
        const double ratio = static_cast<double>(report.measured_critical_recv) /
                             std::max(1.0, report.lower_bound_words);
        table.add_row(
            {Table::fmt_int(P), Table::fmt_int(interval), Table::fmt_int(f),
             Table::fmt_int(report.measured_critical_recv),
             f == 0 ? Table::fmt_int(report.predicted_critical_recv)
                    : "- (fault-free form)",
             Table::fmt_int(report.measured_critical_recv -
                            plain.measured_critical_recv),
             Table::fmt(report.lower_bound_words, 1), Table::fmt(ratio, 4),
             ok ? "bit-exact" : "NO"});
      }
    }
  }
  table.print(std::cout);
  std::cout << (all_exact
                    ? "\nEvery f=0 run matches the closed-form prediction "
                      "exactly."
                    : "\nSOME f=0 RUN MISSED ITS PREDICTION — investigate!")
            << (all_verified
                    ? "\nEvery run produced C bit-identical to the plain "
                      "algorithm."
                    : "\nSOME RUN FAILED VERIFICATION — investigate!")
            << "\n";
  return (all_exact && all_verified) ? 0 : 1;
}
