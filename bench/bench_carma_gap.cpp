// bench_carma_gap — the paper's raison d'être, measured: Demmel et al.'s
// recursive algorithm (CARMA) is asymptotically optimal in all three
// regimes, but its constants are loose; Algorithm 1 with the §5.2 grid
// attains the tight constants of Theorem 3 exactly.  This bench measures
// both on the same problems and reports each one's ratio to the bound —
// the gap is precisely what "tight constants" buys.
#include <iostream>

#include "core/bounds.hpp"
#include "core/grid.hpp"
#include "matmul/runner.hpp"
#include "util/table.hpp"

using namespace camb;

namespace {

struct Case {
  const char* label;
  core::Shape shape;
  int levels;  // P = 2^levels
};

}  // namespace

int main() {
  std::cout << "=== Tight constants vs asymptotic optimality: Algorithm 1 vs "
               "CARMA ===\n\n";
  const Case cases[] = {
      {"1D regime", {512, 64, 32}, 2},         // P = 4 <= m/n = 8
      {"2D regime", {384, 96, 24}, 4},         // P = 16 in [4, 64]
      {"3D regime (square)", {64, 64, 64}, 6}, // P = 64
      {"3D regime (rect)", {128, 64, 32}, 6},  // P = 64 > mn/k^2 = 8
  };
  Table table({"case", "P", "bound", "Alg.1 words", "Alg.1/bound",
               "CARMA words", "CARMA/bound", "splits"});
  for (const Case& c : cases) {
    const i64 P = i64{1} << c.levels;
    if (!mm::carma_supported(c.shape, c.levels)) {
      std::cout << "skipping " << c.label << " (divisibility)\n";
      continue;
    }
    const core::Grid3 grid = core::best_integer_grid(c.shape, P);
    const auto alg1 = mm::run_grid3d(mm::Grid3dConfig{c.shape, grid}, true);
    const auto carma = mm::run_carma(mm::CarmaConfig{c.shape, c.levels}, true);
    const double bound = alg1.lower_bound_words;
    std::string splits;
    for (char s : mm::carma_split_sequence(mm::CarmaConfig{c.shape, c.levels})) {
      splits += s;
    }
    table.add_row(
        {c.label, Table::fmt_int(P), Table::fmt(bound, 1),
         Table::fmt_int(alg1.measured_critical_recv),
         Table::fmt(static_cast<double>(alg1.measured_critical_recv) / bound, 3),
         Table::fmt_int(carma.measured_critical_recv),
         Table::fmt(static_cast<double>(carma.measured_critical_recv) / bound, 3),
         splits});
  }
  table.print(std::cout);
  std::cout
      << "\nBoth algorithms scale with the same leading-order exponents (the\n"
         "asymptotic result of Demmel et al. 2013), but CARMA's binary splits\n"
         "leave a constant-factor gap in every regime; Algorithm 1 with the\n"
         "section-5.2 grid sits at exactly 1.000x — the tightness Theorem 3\n"
         "establishes, and the practical payoff of knowing the constants.\n";
  return 0;
}
