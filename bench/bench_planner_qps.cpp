// bench_planner_qps — throughput, tail latency, and bit-exactness of the
// grid-planner query engine (src/planner) against the uncached analytic
// path it memoizes.
//
// Methodology.  A seeded pool of (shape, P) combinations drives three query
// mixes against the long-lived GridPlanner:
//
//   * repeated — 8 hot combinations cycled (a scheduler re-planning the
//     same jobs; the pure cache-hit regime);
//   * zipf     — pool sampled with Zipf(s = 1.1) skew (production traffic:
//     a few hot shapes, a long tail);
//   * uniform  — pool sampled uniformly (the adversarial mix: every combo
//     equally likely, hit rate = warm-pool rate).
//
// Throughput is wall-clocked over a warm pass (the service is long-lived,
// so steady-state is the honest regime); p50/p99/p999 come from a separate
// per-query-timed pass over the same stream, so timer overhead (~40 ns on
// this VM class) taxes the percentiles but not the qps.  The uncached
// baseline runs plan_uncached — full factor-triple enumeration plus the
// Theorem 3 derivation per query — over the same stream, interleaved after
// the cached pass so clock drift cannot favor the cache.  Multi-thread
// scaling drives T plain threads over disjoint slices (reported, not
// asserted: CI runners pin this VM class to one core).
//
// Exactness gate (this binary exits nonzero on ANY miss):
//   * every pool combination: plan() vs plan_uncached() vs the raw core
//     calls (best_integer_grid / memory_independent_bound /
//     optimal_grid_real), field-for-field, bitwise;
//   * a randomized sweep of fresh (shape, P) queries, cold then cached;
//   * plan_batch vs per-query plan(); plan_sweep vs raw core per point;
//   * best_integer_grid_at_most vs core::best_integer_grid_at_most.
// The full-mode run also asserts the repeated-mix speedup >= 10x (quick
// mode >= 2x: sanitizer and smoke legs run on loaded machines).
//
// Usage: bench_planner_qps [--quick] [--out PATH]
//   --quick  cut query counts ~10x (the CI smoke configuration)
//   --out    write the JSON report to PATH (default: BENCH_PR10.json)
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/bounds.hpp"
#include "core/cost_eq3.hpp"
#include "core/grid.hpp"
#include "planner/planner.hpp"

namespace {

using namespace camb;
using Clock = std::chrono::steady_clock;

double secs(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

/// Deterministic splitmix64 stream (no global RNG state, stable across
/// platforms, immune to seed drift).
struct Rng {
  std::uint64_t state;

  std::uint64_t next() {
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t x = state;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  i64 range(i64 lo, i64 hi) {  // inclusive
    return lo + static_cast<i64>(next() %
                                 static_cast<std::uint64_t>(hi - lo + 1));
  }
};

/// The seeded combination pool: shape families spanning the paper's three
/// regimes (cubes for 3D, one large dimension for 2D/1D) crossed with
/// processor counts of every factorization character (powers of two,
/// smooth composites, primes).
std::vector<planner::PlanRequest> make_pool(std::size_t count, Rng& rng) {
  std::vector<planner::PlanRequest> pool;
  pool.reserve(count);
  while (pool.size() < count) {
    core::Shape shape;
    switch (rng.next() % 4) {
      case 0: {  // cube-ish (3D regime)
        const i64 n = rng.range(64, 4096);
        shape = {n, std::max<i64>(1, n + rng.range(-n / 8, n / 8)), n};
        break;
      }
      case 1: {  // one large dimension (2D regime)
        const i64 n = rng.range(512, 16384);
        shape = {n, rng.range(16, 256), rng.range(16, 256)};
        break;
      }
      case 2: {  // extreme aspect ratio (1D regime)
        shape = {rng.range(1 << 14, 1 << 20), rng.range(2, 16),
                 rng.range(2, 16)};
        break;
      }
      default: {  // paper-style 16a x 4a x a
        const i64 a = rng.range(50, 800);
        shape = {16 * a, 4 * a, a};
        break;
      }
    }
    i64 P = 1;
    switch (rng.next() % 3) {
      case 0:  // power of two
        P = i64{1} << rng.range(0, 13);
        break;
      case 1:  // smooth composite
        P = rng.range(1, 8) * rng.range(1, 8) * rng.range(1, 8) *
            rng.range(1, 8);
        break;
      default:  // arbitrary (primes included)
        P = rng.range(1, 8192);
        break;
    }
    pool.push_back({shape, P});
  }
  return pool;
}

/// Query stream: indices into the pool under one of the three mixes.
std::vector<std::size_t> make_stream(const std::string& mix,
                                     std::size_t pool_size, std::size_t count,
                                     Rng& rng) {
  std::vector<std::size_t> stream;
  stream.reserve(count);
  if (mix == "repeated") {
    const std::size_t hot = std::min<std::size_t>(8, pool_size);
    for (std::size_t i = 0; i < count; ++i) stream.push_back(i % hot);
    return stream;
  }
  if (mix == "zipf") {
    // CDF of weight 1/(rank+1)^1.1 over pool order, sampled by bisection.
    std::vector<double> cdf(pool_size);
    double total = 0;
    for (std::size_t i = 0; i < pool_size; ++i) {
      total += 1.0 / std::pow(static_cast<double>(i + 1), 1.1);
      cdf[i] = total;
    }
    for (std::size_t i = 0; i < count; ++i) {
      const double u =
          total * static_cast<double>(rng.next() >> 11) / 9007199254740992.0;
      stream.push_back(static_cast<std::size_t>(
          std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin()));
    }
    return stream;
  }
  for (std::size_t i = 0; i < count; ++i) {
    stream.push_back(rng.next() % pool_size);
  }
  return stream;
}

struct MixResult {
  std::string mix;
  std::size_t queries = 0;
  double qps = 0;
  double ns_p50 = 0, ns_p99 = 0, ns_p999 = 0;
  double uncached_ns = 0;
  double speedup = 0;
};

MixResult bench_mix(const std::string& mix,
                    const std::vector<planner::PlanRequest>& pool,
                    const std::vector<std::size_t>& stream,
                    std::size_t baseline_queries) {
  planner::GridPlanner& service = planner::GridPlanner::instance();
  MixResult out;
  out.mix = mix;
  out.queries = stream.size();

  volatile double sink = 0;  // keep the optimizer honest
  // Warm pass (fills the caches the long-lived service would hold), then
  // the wall-clocked throughput pass.
  for (const std::size_t i : stream) sink += service.plan(pool[i]).cost_words;
  const auto t0 = Clock::now();
  for (const std::size_t i : stream) sink += service.plan(pool[i]).cost_words;
  const auto t1 = Clock::now();
  out.qps = static_cast<double>(stream.size()) / secs(t0, t1);

  // Per-query-timed pass for the tail.
  std::vector<double> ns(stream.size());
  for (std::size_t q = 0; q < stream.size(); ++q) {
    const auto a = Clock::now();
    sink += service.plan(pool[stream[q]]).cost_words;
    const auto b = Clock::now();
    ns[q] = secs(a, b) * 1e9;
  }
  const auto pct = [&ns](double p) {
    const std::size_t idx = std::min(
        ns.size() - 1, static_cast<std::size_t>(p * static_cast<double>(
                                                        ns.size() - 1)));
    std::nth_element(ns.begin(), ns.begin() + static_cast<std::ptrdiff_t>(idx),
                     ns.end());
    return ns[idx];
  };
  out.ns_p50 = pct(0.50);
  out.ns_p99 = pct(0.99);
  out.ns_p999 = pct(0.999);

  // Uncached baseline over the same stream (prefix), interleaved after the
  // cached pass so drift taxes both sides.
  const std::size_t nb = std::min(baseline_queries, stream.size());
  const auto b0 = Clock::now();
  for (std::size_t q = 0; q < nb; ++q) {
    sink += planner::plan_uncached(pool[stream[q]]).cost_words;
  }
  const auto b1 = Clock::now();
  out.uncached_ns = secs(b0, b1) * 1e9 / static_cast<double>(nb);
  out.speedup = out.uncached_ns / (1e9 / out.qps);
  (void)sink;
  return out;
}

/// Aggregate qps with T plain threads sharing the warmed service, each on
/// its own slice of the stream.
double bench_threads(int threads, const std::vector<planner::PlanRequest>& pool,
                     const std::vector<std::size_t>& stream) {
  planner::GridPlanner& service = planner::GridPlanner::instance();
  std::vector<std::thread> team;
  team.reserve(static_cast<std::size_t>(threads));
  const auto t0 = Clock::now();
  for (int t = 0; t < threads; ++t) {
    team.emplace_back([&, t] {
      volatile double sink = 0;
      const std::size_t begin = stream.size() * static_cast<std::size_t>(t) /
                                static_cast<std::size_t>(threads);
      const std::size_t end = stream.size() *
                              static_cast<std::size_t>(t + 1) /
                              static_cast<std::size_t>(threads);
      for (std::size_t q = begin; q < end; ++q) {
        sink += service.plan(pool[stream[q]]).cost_words;
      }
      (void)sink;
    });
  }
  for (std::thread& th : team) th.join();
  const auto t1 = Clock::now();
  return static_cast<double>(stream.size()) / secs(t0, t1);
}

/// Field-for-field bitwise comparison against the raw core calls.
bool matches_core(const planner::PlanRequest& req,
                  const planner::PlanResult& got) {
  const planner::PlanResult oracle = planner::plan_uncached(req);
  if (!(got == oracle)) return false;
  if (got.grid != core::best_integer_grid(req.shape, req.P)) return false;
  const core::BoundResult bound =
      core::memory_independent_bound(req.shape, static_cast<double>(req.P));
  if (got.regime != bound.regime || got.bound_words != bound.words) {
    return false;
  }
  const core::SortedDims d = core::sort_dims(req.shape);
  const core::RealGrid real = core::optimal_grid_real(
      static_cast<double>(d.m), static_cast<double>(d.n),
      static_cast<double>(d.k), static_cast<double>(req.P));
  return got.real == real;
}

struct Exactness {
  std::size_t checked = 0;
  std::size_t mismatches = 0;

  void tally(bool ok) {
    ++checked;
    if (!ok) ++mismatches;
  }
};

Exactness verify_exactness(const std::vector<planner::PlanRequest>& pool,
                           std::size_t random_queries, Rng& rng) {
  planner::GridPlanner& service = planner::GridPlanner::instance();
  Exactness ex;

  // Every pool combination: warm answer vs uncached vs raw core.
  for (const planner::PlanRequest& req : pool) {
    ex.tally(matches_core(req, service.plan(req)));
  }

  // Randomized fresh queries: cold answer, then the cached replay.
  for (std::size_t i = 0; i < random_queries; ++i) {
    const core::Shape shape{rng.range(1, 4096), rng.range(1, 4096),
                            rng.range(1, 4096)};
    const planner::PlanRequest req{shape, rng.range(1, 4096)};
    const planner::PlanResult cold = service.plan(req);
    ex.tally(matches_core(req, cold));
    ex.tally(service.plan(req) == cold);
  }

  // Batch vs per-query (with duplicates so the dedup path is exercised).
  {
    std::vector<planner::PlanRequest> batch;
    for (std::size_t i = 0; i < 256; ++i) {
      batch.push_back(pool[rng.next() % std::min<std::size_t>(64,
                                                              pool.size())]);
    }
    const std::vector<planner::PlanResult> results =
        service.plan_batch(batch, 4);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      ex.tally(results[i] == service.plan(batch[i]));
    }
  }

  // Sweep vs raw core per point.
  {
    const core::Shape shape{9600, 2400, 600};
    std::vector<i64> counts;
    for (i64 P = 1; P <= 4096; P *= 2) counts.push_back(P);
    const planner::SweepResult sweep = service.plan_sweep(shape, counts);
    for (const planner::SweepPoint& pt : sweep.points) {
      const core::BoundResult bound =
          core::memory_independent_bound(shape, static_cast<double>(pt.P));
      ex.tally(pt.regime == bound.regime && pt.bound_words == bound.words &&
               pt.grid == core::best_integer_grid(shape, pt.P));
    }
  }

  // Elastic at-most re-planning vs the memo-free core search.
  for (const i64 max_procs : {1, 2, 17, 96, 255}) {
    const core::Shape shape{384, 96, 24};
    ex.tally(service.best_integer_grid_at_most(shape, max_procs) ==
             core::best_integer_grid_at_most(shape, max_procs));
  }
  return ex;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_PR10.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: bench_planner_qps [--quick] [--out PATH]\n");
      return 2;
    }
  }

  const std::size_t pool_size = quick ? 128 : 512;
  const std::size_t queries = quick ? 20000 : 200000;
  const std::size_t baseline_queries = quick ? 300 : 2000;
  const std::size_t random_checks = quick ? 1000 : 10000;
  const double required_speedup = quick ? 2.0 : 10.0;

  Rng rng{0x5EEDC0DE2026ULL};
  const std::vector<planner::PlanRequest> pool = make_pool(pool_size, rng);

  std::printf("bench_planner_qps (%s mode): pool of %zu (shape, P) combos\n\n",
              quick ? "quick" : "full", pool.size());

  std::vector<MixResult> mixes;
  for (const char* mix : {"repeated", "zipf", "uniform"}) {
    const std::vector<std::size_t> stream =
        make_stream(mix, pool.size(), queries, rng);
    mixes.push_back(bench_mix(mix, pool, stream, baseline_queries));
    const MixResult& m = mixes.back();
    std::printf("%-9s %9.0f qps   p50 %6.0f ns  p99 %7.0f ns  p999 %8.0f ns"
                "   uncached %8.0f ns/q   speedup %7.1fx\n",
                m.mix.c_str(), m.qps, m.ns_p50, m.ns_p99, m.ns_p999,
                m.uncached_ns, m.speedup);
  }

  // Batched API throughput (uniform mix with duplicates).
  double batch_qps = 0;
  double dedup_fraction = 0;
  {
    Rng brng{0xBA7C4ED5ULL};
    const std::vector<std::size_t> stream =
        make_stream("zipf", pool.size(), quick ? 20000 : 100000, brng);
    std::vector<planner::PlanRequest> batch;
    batch.reserve(stream.size());
    for (const std::size_t i : stream) batch.push_back(pool[i]);
    const planner::PlannerStats before =
        planner::GridPlanner::instance().stats();
    const auto t0 = Clock::now();
    const std::vector<planner::PlanResult> results =
        planner::GridPlanner::instance().plan_batch(batch);
    const auto t1 = Clock::now();
    const planner::PlannerStats after =
        planner::GridPlanner::instance().stats();
    batch_qps = static_cast<double>(results.size()) / secs(t0, t1);
    dedup_fraction =
        static_cast<double>(after.batch_deduped - before.batch_deduped) /
        static_cast<double>(batch.size());
    std::printf("\nplan_batch %9.0f qps  (%.1f%% answered by dedup)\n",
                batch_qps, 100.0 * dedup_fraction);
  }

  // Multi-thread scaling (reported, not asserted: CI pins one core).
  struct ScalePoint {
    int threads;
    double qps;
  };
  std::vector<ScalePoint> scaling;
  {
    Rng srng{0x7EA27115ULL};
    const std::vector<std::size_t> stream =
        make_stream("zipf", pool.size(), quick ? 40000 : 200000, srng);
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    for (int t = 1; t <= static_cast<int>(std::min(8u, hw * 2)); t *= 2) {
      scaling.push_back({t, bench_threads(t, pool, stream)});
      std::printf("threads %d %9.0f qps\n", t, scaling.back().qps);
    }
  }

  Rng xrng{0xE84C7ULL};
  const Exactness ex = verify_exactness(pool, random_checks, xrng);
  std::printf("\nexactness: %zu checks, %zu mismatches\n", ex.checked,
              ex.mismatches);

  const planner::PlannerStats stats = planner::GridPlanner::instance().stats();

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"planner_qps\",\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", quick ? "quick" : "full");
  std::fprintf(f,
               "  \"methodology\": \"warm-pass wall-clock qps + per-query "
               "percentiles per mix; uncached baseline = plan_uncached over "
               "the same stream, run interleaved after the cached pass; "
               "multi-thread points are plain threads over disjoint slices "
               "(reported only: this VM class has one core); every answer "
               "is bitwise-checked against the memo-free core path\",\n");
  std::fprintf(f, "  \"pool\": %zu,\n", pool.size());
  std::fprintf(f, "  \"mixes\": [\n");
  for (std::size_t i = 0; i < mixes.size(); ++i) {
    const MixResult& m = mixes[i];
    std::fprintf(f,
                 "    {\"mix\": \"%s\", \"queries\": %zu, \"qps\": %.0f, "
                 "\"ns_p50\": %.0f, \"ns_p99\": %.0f, \"ns_p999\": %.0f, "
                 "\"uncached_ns\": %.0f, \"speedup\": %.2f}%s\n",
                 m.mix.c_str(), m.queries, m.qps, m.ns_p50, m.ns_p99,
                 m.ns_p999, m.uncached_ns, m.speedup,
                 i + 1 < mixes.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"batch\": {\"qps\": %.0f, \"dedup_fraction\": %.4f},\n",
               batch_qps, dedup_fraction);
  std::fprintf(f, "  \"scaling\": [\n");
  for (std::size_t i = 0; i < scaling.size(); ++i) {
    std::fprintf(f, "    {\"threads\": %d, \"qps\": %.0f}%s\n",
                 scaling[i].threads, scaling[i].qps,
                 i + 1 < scaling.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"cache\": {\"point_hits\": %llu, \"point_misses\": %llu, "
               "\"factor_hits\": %llu, \"factor_misses\": %llu},\n",
               static_cast<unsigned long long>(stats.point.hits),
               static_cast<unsigned long long>(stats.point.misses),
               static_cast<unsigned long long>(stats.factor.hits),
               static_cast<unsigned long long>(stats.factor.misses));
  std::fprintf(f,
               "  \"exactness\": {\"checked\": %zu, \"mismatches\": %zu}\n",
               ex.checked, ex.mismatches);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());

  if (ex.mismatches != 0) {
    std::fprintf(stderr,
                 "FAIL: %zu cached answers diverged from the uncached path\n",
                 ex.mismatches);
    return 1;
  }
  for (const MixResult& m : mixes) {
    if (m.mix != "uniform" && m.speedup < required_speedup) {
      std::fprintf(stderr,
                   "FAIL: %s mix speedup %.2fx below the %.0fx floor\n",
                   m.mix.c_str(), m.speedup, required_speedup);
      return 1;
    }
  }
  return 0;
}
