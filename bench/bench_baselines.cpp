// bench_baselines — the §2.4 context, executed: Algorithm 1 with the optimal
// grid vs classical baselines (SUMMA, Cannon, naive broadcast, and Alg. 1 on
// deliberately sub-optimal grids standing in for fixed-strategy libraries),
// across the three regimes.  The headline: who wins, by what factor, and
// where each baseline's communication sits relative to Theorem 3.
#include <iostream>

#include "core/bounds.hpp"
#include "core/grid.hpp"
#include "matmul/runner.hpp"
#include "util/math.hpp"
#include "util/table.hpp"

using namespace camb;

namespace {

void compare(const char* label, const core::Shape& shape, i64 P) {
  const auto bound =
      core::memory_independent_bound(shape, static_cast<double>(P));
  std::cout << "--- " << label << ": shape " << shape.n1 << "x" << shape.n2
            << "x" << shape.n3 << ", P = " << P << " (regime "
            << static_cast<int>(bound.regime) << "D), bound = "
            << Table::fmt(bound.words, 1) << " words ---\n";
  Table table({"algorithm", "measured words/rank", "vs bound", "verified"});

  auto add = [&](const std::string& name, const mm::RunReport& report) {
    table.add_row({name, Table::fmt_int(report.measured_critical_recv),
                   Table::fmt(static_cast<double>(
                                  report.measured_critical_recv) /
                                  std::max(1.0, bound.words),
                              3) +
                       "x",
                   !report.verified ? "-"
                                    : (report.max_abs_error < 1e-9 ? "yes"
                                                                   : "NO")});
  };

  const core::Grid3 best = core::best_integer_grid(shape, P);
  add("Algorithm 1, optimal grid " + std::to_string(best.p1) + "x" +
          std::to_string(best.p2) + "x" + std::to_string(best.p3),
      mm::run_grid3d(mm::Grid3dConfig{shape, best}, true));
  add("Agarwal'95 (All-to-All), same grid",
      mm::run_grid3d_agarwal(mm::Grid3dAgarwalConfig{shape, best}, true));

  const i64 g = isqrt(P);
  if (g * g == P) {
    add("SUMMA " + std::to_string(g) + "x" + std::to_string(g),
        mm::run_summa(mm::SummaConfig{shape, g}, true));
    add("Cannon " + std::to_string(g) + "x" + std::to_string(g),
        mm::run_cannon(mm::CannonConfig{shape, g}, true));
    add("Algorithm 1 on the square 2D grid " + std::to_string(g) + "x1x" +
            std::to_string(g),
        mm::run_grid3d(mm::Grid3dConfig{shape, core::Grid3{g, 1, g}}, true));
  }
  // 2.5D with the deepest replication that fits P = g'^2 * c.
  for (i64 c : {2, 4}) {
    if (P % c != 0) continue;
    const i64 gsq = P / c;
    const i64 gg = isqrt(gsq);
    if (gg * gg != gsq || gg % c != 0) continue;
    add("2.5D " + std::to_string(gg) + "x" + std::to_string(gg) + "x" +
            std::to_string(c),
        mm::run_alg25d(mm::Alg25dConfig{shape, gg, c}, true));
  }
  add("naive broadcast-everything",
      mm::run_naive_bcast(mm::NaiveBcastConfig{shape}, P, true));
  table.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main() {
  std::cout << "=== Baselines vs the communication-optimal algorithm ===\n\n";
  // 1D regime: strongly rectangular, few processors.  2D algorithms pay for
  // partitioning the short dimensions.
  compare("1D regime", core::Shape{512, 64, 32}, 4);
  // 2D regime: the optimal grid is 2D but aspect-matched, not square.
  compare("2D regime", core::Shape{384, 96, 24}, 16);
  // 3D regime: square-ish problem, many processors — 2D algorithms leave the
  // P^{2/3} scaling on the table.
  compare("3D regime", core::Shape{96, 96, 96}, 64);
  // Square problem at moderate P for a like-for-like SUMMA comparison.
  compare("square, moderate P", core::Shape{120, 120, 120}, 36);
  std::cout
      << "Reading: Algorithm 1 with the section-5.2 grid is at 1.000x the "
         "bound in every\nregime.  Square-grid 2D algorithms match it only "
         "for square problems in the 2D\nregime and lose by growing factors "
         "elsewhere; the naive baseline does not scale\nat all.\n";
  return 0;
}
