// bench_sdc_overhead — what healing silent data corruption costs: for
// grid3d and summa at P in {8, 27, 64}, runs under the reliable transport
// with increasing per-copy drop/flip/dup injection rates and tables the
// retransmit tax against the fault-free traffic and the Theorem 3 bound.
//
// The numbers are exact, not sampled: at rate 0 the run must match the
// fault-free baseline word for word, and at every rate the measured
// per-rank totals must equal baseline + coll::predicted_transport_phase
// replayed over the counted-send log (the closed-form tax).  Any escaped
// corruption or missed prediction exits nonzero.
//
// Usage: bench_sdc_overhead [--quick] [--out PATH]
//   --quick   fewer injection rates (the CI smoke mode)
//   --out     also emit a BENCH_PR7.json machine-readable report
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "collectives/coll_cost.hpp"
#include "machine/faults.hpp"
#include "matmul/algorithm_registry.hpp"
#include "matmul/runner.hpp"
#include "util/table.hpp"

using namespace camb;

namespace {

struct CaseResult {
  std::string algorithm;
  i64 P = 0;
  double rate = 0;
  bool supported = true;
  i64 injected = 0;          // drops + flips + dups
  i64 clean_recv = 0;        // fault-free critical-path received words
  i64 faulted_recv = 0;      // same, under injection (includes transport tax)
  i64 retransmit_words = 0;  // sender-side extra on-wire words (sum over ranks)
  double tax_ratio = 0;      // faulted_recv / clean_recv
  double bound_ratio = 0;    // faulted_recv / Theorem 3 bound
  bool exact = false;        // totals == baseline + closed-form tax, 0 escaped
};

/// One (algorithm, P, rate) cell: run healed, pin against the closed-form
/// predictor rank for rank, and report the tax.
CaseResult run_case(const mm::AlgorithmInfo& algorithm, const core::Shape shape,
                    i64 P, double rate, const mm::RunReport& clean) {
  CaseResult res;
  res.algorithm = algorithm.name;
  res.P = P;
  res.rate = rate;

  mm::RunOptions opts = mm::RunOptions::verified(mm::VerifyMode::kReference);
  opts.sdc.message_rate = rate;
  opts.sdc.reliable = true;
  opts.sdc.sdc_seed_override = 0xBE7C;
  opts.collect_trace = true;
  const mm::RunReport report = algorithm.run_opts(shape, P, opts);

  res.injected = report.corruption.injected_drops +
                 report.corruption.injected_flips +
                 report.corruption.injected_dups;
  res.clean_recv = clean.measured_critical_recv;
  res.faulted_recv = report.measured_critical_recv;
  res.retransmit_words = report.corruption.retransmitted_words;
  res.tax_ratio = clean.measured_critical_recv > 0
                      ? static_cast<double>(report.measured_critical_recv) /
                            static_cast<double>(clean.measured_critical_recv)
                      : 1.0;
  res.bound_ratio = report.lower_bound_words > 0
                        ? static_cast<double>(report.measured_critical_recv) /
                              report.lower_bound_words
                        : 0.0;

  // Exactness: bit-identical output, zero escapes, and measured per-rank
  // totals equal to baseline + the replayed transport-tax predictor.
  bool exact = report.verified && report.output_hash == clean.output_hash &&
               report.corruption.escaped == 0;
  FaultProfile profile;
  profile.drop_prob = rate;
  profile.flip_prob = rate;
  profile.dup_prob = rate;
  const std::vector<PhaseCounters> tax = coll::predicted_transport_phase(
      profile, opts.perturb.fault_seed(), opts.sdc.sdc_seed_override,
      static_cast<int>(P), report.trace_events);
  for (std::size_t r = 0; r < static_cast<std::size_t>(P); ++r) {
    exact &= report.rank_recv_words[r] ==
             clean.rank_recv_words[r] + tax[r].words_received();
    exact &= report.rank_sent_words[r] ==
             clean.rank_sent_words[r] + tax[r].words_sent();
    exact &= report.rank_messages[r] ==
             clean.rank_messages[r] + tax[r].messages_sent;
  }
  if (rate == 0.0) {
    exact &= res.injected == 0 &&
             report.simulated_time == clean.simulated_time;
  }
  res.exact = exact;
  return res;
}

void write_json(const std::string& path, const std::vector<CaseResult>& rows,
                bool quick) {
  std::ofstream out(path);
  out << "{\n"
      << "  \"bench\": \"sdc_overhead\",\n"
      << "  \"mode\": \"" << (quick ? "quick" : "full") << "\",\n"
      << "  \"methodology\": \"per-copy drop=flip=dup Bernoulli injection "
         "healed by the reliable transport; tax pinned exactly against the "
         "closed-form replay predictor; shape 96x96x96, seed 0xBE7C\",\n"
      << "  \"cases\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const CaseResult& r = rows[i];
    out << "    {\"algorithm\": \"" << r.algorithm << "\", \"procs\": " << r.P
        << ", \"rate\": " << r.rate << ", \"injected\": " << r.injected
        << ", \"clean_recv_words\": " << r.clean_recv
        << ", \"faulted_recv_words\": " << r.faulted_recv
        << ", \"retransmit_words\": " << r.retransmit_words
        << ", \"tax_ratio\": " << r.tax_ratio
        << ", \"bound_ratio\": " << r.bound_ratio
        << ", \"exact\": " << (r.exact ? "true" : "false") << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }

  const core::Shape shape{96, 96, 96};
  const char* algorithms[] = {"grid3d_optimal", "summa"};
  const i64 procs[] = {8, 27, 64};
  const std::vector<double> rates =
      quick ? std::vector<double>{0.0, 0.05}
            : std::vector<double>{0.0, 0.02, 0.05, 0.10};

  std::cout << "=== SDC retransmit tax vs injection rate ===\n"
            << "(healed word-exactly by the reliable transport; 'exact' pins "
               "totals to baseline + closed-form tax)\n\n";
  Table table({"algorithm", "P", "rate", "injected", "clean recv",
               "faulted recv", "retransmit w", "tax", "vs Thm3", "exact"});
  std::vector<CaseResult> rows;
  bool all_exact = true;
  for (const char* name : algorithms) {
    const mm::AlgorithmInfo& algorithm = mm::algorithm_by_name(name);
    for (const i64 P : procs) {
      if (!algorithm.supports(shape, P)) {
        // summa needs a square grid; record the gap honestly instead of
        // silently shrinking the sweep.
        table.add_row({name, Table::fmt_int(P), "-", "-", "-", "-", "-", "-",
                       "-", "unsupported grid"});
        continue;
      }
      const mm::RunReport clean = algorithm.run_opts(
          shape, P, mm::RunOptions::verified(mm::VerifyMode::kReference));
      for (const double rate : rates) {
        const CaseResult res = run_case(algorithm, shape, P, rate, clean);
        all_exact &= res.exact;
        rows.push_back(res);
        table.add_row({res.algorithm, Table::fmt_int(res.P),
                       Table::fmt(res.rate, 2), Table::fmt_int(res.injected),
                       Table::fmt_int(res.clean_recv),
                       Table::fmt_int(res.faulted_recv),
                       Table::fmt_int(res.retransmit_words),
                       Table::fmt(res.tax_ratio, 4),
                       Table::fmt(res.bound_ratio, 4),
                       res.exact ? "bit-exact" : "NO"});
      }
    }
  }
  table.print(std::cout);
  std::cout << (all_exact ? "\nEvery run healed bit-identically and matched "
                            "the closed-form tax exactly.\n"
                          : "\nSOME RUN MISSED ITS PREDICTION OR LEAKED "
                            "CORRUPTION — investigate!\n");
  if (!out_path.empty()) {
    write_json(out_path, rows, quick);
    std::cout << "wrote " << out_path << "\n";
  }
  return all_exact ? 0 : 1;
}
