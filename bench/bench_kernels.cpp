// bench_kernels — google-benchmark microbenchmarks of the substrate:
// the local GEMM kernel (the γ term), mailbox round-trips and machine spawn
// overhead (simulation costs), and collective throughput per group size.
#include <benchmark/benchmark.h>

#include <numeric>

#include "collectives/allgather.hpp"
#include "collectives/reduce_scatter.hpp"
#include "machine/machine.hpp"
#include "matmul/local_gemm.hpp"
#include "matmul/runner.hpp"

namespace {

using namespace camb;
using namespace camb::mm;

void BM_LocalGemm(benchmark::State& state) {
  const i64 n = state.range(0);
  MatrixD a(n, n), b(n, n), c(n, n);
  a.fill_indexed(0, 0);
  b.fill_indexed(1, 1);
  for (auto _ : state) {
    gemm_accumulate(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);  // flops
}
BENCHMARK(BM_LocalGemm)->Arg(64)->Arg(128)->Arg(256);

void BM_LocalGemmF32(benchmark::State& state) {
  const i64 n = state.range(0);
  Matrix<float> a(n, n), b(n, n), c(n, n);
  a.fill_indexed(0, 0);
  b.fill_indexed(1, 1);
  for (auto _ : state) {
    gemm_accumulate(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);  // flops
}
BENCHMARK(BM_LocalGemmF32)->Arg(64)->Arg(128)->Arg(256);

void BM_ReferenceGemm(benchmark::State& state) {
  const i64 n = state.range(0);
  MatrixD a(n, n), b(n, n);
  a.fill_indexed(0, 0);
  b.fill_indexed(1, 1);
  for (auto _ : state) {
    MatrixD c = matmul_reference(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_ReferenceGemm)->Arg(64)->Arg(128);

void BM_MachineSpawn(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Machine machine(p);
    machine.run([](RankCtx&) {});
  }
  state.SetItemsProcessed(state.iterations() * p);
}
BENCHMARK(BM_MachineSpawn)->Arg(4)->Arg(16)->Arg(64);

void BM_MailboxPingPong(benchmark::State& state) {
  const i64 words = state.range(0);
  Machine machine(2);
  for (auto _ : state) {
    machine.run([&](RankCtx& ctx) {
      if (ctx.rank() == 0) {
        ctx.send(1, 0, std::vector<double>(static_cast<std::size_t>(words)));
        (void)ctx.recv(1, 1);
      } else {
        (void)ctx.recv(0, 0);
        ctx.send(0, 1, std::vector<double>(static_cast<std::size_t>(words)));
      }
    });
  }
  state.SetBytesProcessed(state.iterations() * 2 * words * 8);
}
BENCHMARK(BM_MailboxPingPong)->Arg(64)->Arg(4096)->Arg(262144);

void BM_Allgather(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  const i64 block = state.range(1);
  for (auto _ : state) {
    Machine machine(p);
    machine.run([&](RankCtx& ctx) {
      (void)coll::allgather_equal(
          coll::Comm::world(ctx),
          std::vector<double>(static_cast<std::size_t>(block)));
    });
  }
  state.SetBytesProcessed(state.iterations() * p * (p - 1) * block * 8);
}
BENCHMARK(BM_Allgather)->Args({4, 4096})->Args({8, 4096})->Args({16, 4096});

void BM_ReduceScatter(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  const i64 seg = state.range(1);
  for (auto _ : state) {
    Machine machine(p);
    machine.run([&](RankCtx& ctx) {
      (void)coll::reduce_scatter_equal(
          coll::Comm::world(ctx),
          std::vector<double>(static_cast<std::size_t>(seg * p), 1.0));
    });
  }
  state.SetBytesProcessed(state.iterations() * p * (p - 1) * seg * 8);
}
BENCHMARK(BM_ReduceScatter)->Args({4, 4096})->Args({8, 4096})->Args({16, 4096});

void BM_Grid3dEndToEnd(benchmark::State& state) {
  const i64 edge = state.range(0);
  const core::Shape shape{4 * edge, 2 * edge, edge};
  const core::Grid3 grid{4, 2, 1};
  for (auto _ : state) {
    mm::Grid3dConfig cfg{shape, grid};
    const auto report = mm::run_grid3d(cfg, false);
    benchmark::DoNotOptimize(report.measured_critical_recv);
  }
  state.SetItemsProcessed(state.iterations() * shape.flops());
}
BENCHMARK(BM_Grid3dEndToEnd)->Arg(16)->Arg(32)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
