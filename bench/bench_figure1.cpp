// bench_figure1 — regenerates Figure 1 of the paper, in text: Algorithm 1 on
// a 3x3x3 processor grid, from the perspective of processor (1,3,1) (the
// paper's 1-based coordinates; (0,2,0) here).
//
// The figure shows: the input data the processor initially owns (dark), the
// other processors' data it uses for its local computation (light), and the
// three collectives along the three fibers through the processor.  We run
// the algorithm for real (27 ranks), trace every message, and print exactly
// those elements — blocks, fibers, per-phase words, and the measured
// communication partners, all cross-checked against eq. 3.
#include <iostream>

#include "core/cost_eq3.hpp"
#include "machine/trace.hpp"
#include "matmul/grid3d.hpp"
#include "matmul/runner.hpp"
#include "util/table.hpp"

using namespace camb;

int main() {
  // Square shape as in the figure (n1 = n2 = n3), divisible by 3.
  const core::Shape shape{27, 27, 27};
  const core::Grid3 grid{3, 3, 3};
  const mm::GridMap map(grid);
  // The paper's processor (1,3,1), 0-based (0,2,0).
  const i64 q1 = 0, q2 = 2, q3 = 0;
  const int hero = map.rank_of(q1, q2, q3);

  std::cout << "=== Figure 1: Algorithm 1 on a 3x3x3 grid, processor (1,3,1) "
               "===\n\n"
            << "shape " << shape.n1 << "^3, grid 3x3x3 (27 processors); "
            << "hero processor: grid (1,3,1) [1-based] = rank " << hero
            << "\n\n";

  const mm::Grid3dConfig cfg{shape, grid};
  const auto layout = mm::grid3d_layout(cfg, hero);
  std::cout << "--- data (the figure's shading) ---\n"
            << "owns (dark):   1/3 of A block A_{13} = rows "
            << layout.a.row0 << ".." << layout.a.row0 + layout.a.rows - 1
            << " x cols " << layout.a.col0 << ".."
            << layout.a.col0 + layout.a.cols - 1 << " (" << layout.a.flat_size
            << " of " << layout.a.block_size() << " words)\n"
            << "               1/3 of B block B_{31} = rows "
            << layout.b.row0 << ".." << layout.b.row0 + layout.b.rows - 1
            << " x cols " << layout.b.col0 << ".."
            << layout.b.col0 + layout.b.cols - 1 << " (" << layout.b.flat_size
            << " of " << layout.b.block_size() << " words)\n"
            << "ends with:     1/3 of C block C_{11} (" << layout.c.flat_size
            << " words)\n"
            << "uses (light):  the rest of A_{13} and B_{31}, gathered from "
               "the fibers below\n\n";

  // Execute with tracing.
  Machine machine(27);
  Trace& trace = machine.enable_trace();
  machine.run([&](RankCtx& ctx) { (void)mm::grid3d_rank(ctx, cfg); });

  std::cout << "--- the three collectives through (1,3,1) (the figure's "
               "arrows) ---\n";
  Table table({"collective", "fiber", "partners of rank " +
                                          std::to_string(hero),
               "words received"});
  struct FiberRow {
    const char* name;
    int axis;
    const char* fiber_label;
    const char* phase;
  };
  const FiberRow rows[] = {
      {"All-Gather A_{13}", 2, "(1,3,:)", mm::kPhaseAllgatherA},
      {"All-Gather B_{31}", 0, "(:,3,1)", mm::kPhaseAllgatherB},
      {"Reduce-Scatter C_{11}", 1, "(1,:,1)", mm::kPhaseReduceScatterC},
  };
  for (const auto& row : rows) {
    const auto fiber = map.fiber(row.axis, q1, q2, q3);
    std::string partners;
    for (int r : fiber) {
      if (r == hero) continue;
      if (!partners.empty()) partners += ", ";
      partners += std::to_string(r);
    }
    double words = 0;
    for (const auto& event : trace.events_in_phase(row.phase)) {
      if (event.dst == hero) words += event.words();
    }
    table.add_row({row.name, row.fiber_label, partners,
                   Table::fmt_int(static_cast<i64>(words))});
  }
  table.print(std::cout);

  // Cross-check against eq. 3's per-collective terms.
  const auto breakdown = core::alg1_comm_breakdown(shape, grid);
  std::cout << "\neq. 3 per-collective prediction: A "
            << Table::fmt(breakdown.allgather_a, 0) << ", B "
            << Table::fmt(breakdown.allgather_b, 0) << ", C "
            << Table::fmt(breakdown.reduce_scatter_c, 0)
            << " words — matching the measured rows above.\n";

  // The figure's caption facts, verified mechanically.
  bool fibers_only = true;
  for (const auto& event : trace.events()) {
    const auto a = map.coords_of(event.src);
    const auto b = map.coords_of(event.dst);
    int equal = 0;
    for (int axis = 0; axis < 3; ++axis) {
      equal += a[static_cast<std::size_t>(axis)] ==
               b[static_cast<std::size_t>(axis)];
    }
    fibers_only &= (equal == 2);
  }
  std::cout << "every one of the " << trace.event_count()
            << " traced messages travels along a grid fiber: "
            << (fibers_only ? "yes" : "NO (bug)") << "\n";
  return 0;
}
