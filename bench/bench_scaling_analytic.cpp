// bench_scaling_analytic — supercomputer-scale comparison, analytically.
//
// Every algorithm in this library carries an exact per-rank communication
// predictor that the integration tests validate word-for-word against
// executed runs at feasible P.  This bench evaluates those predictors at
// machine scales far beyond what can be executed (up to P = 2^20),
// reproducing the shape of the paper's scaling story: who wins, by what
// factor, and how the ratios to the Theorem 3 bound behave as P grows
// through the three regimes.
#include <iostream>

#include "core/bounds.hpp"
#include "core/cost_eq3.hpp"
#include "core/grid.hpp"
#include "matmul/carma.hpp"
#include "util/table.hpp"

using namespace camb;

namespace {

/// Max over ranks of CARMA's predicted received words (pure arithmetic).
double carma_critical_words(const core::Shape& shape, int levels) {
  const auto words = mm::carma_predicted_recv_words(
      mm::CarmaConfig{shape, levels});
  i64 worst = 0;
  for (i64 w : words) worst = std::max(worst, w);
  return static_cast<double>(worst);
}

}  // namespace

int main() {
  std::cout << "=== Analytic scaling comparison (validated predictors, huge P) "
               "===\n\n";
  // Square problem scaled so divisibility holds through 2^20 ranks.
  const core::Shape shape{1 << 13, 1 << 13, 1 << 13};  // 8192^3
  std::cout << "square problem " << shape.n1 << "^3; Algorithm 1 uses the "
               "best integer grid, CARMA uses 2^levels ranks\n\n";
  Table table({"P", "bound words", "Alg.1 eq.3", "Alg.1/bound", "CARMA",
               "CARMA/bound"});
  for (int levels = 2; levels <= 20; levels += 3) {
    const i64 P = i64{1} << levels;
    const auto bound =
        core::memory_independent_bound(shape, static_cast<double>(P));
    const core::Grid3 grid = core::best_integer_grid(shape, P);
    const double alg1 = core::alg1_cost_words(shape, grid);
    double carma = -1;
    if (mm::carma_supported(shape, levels)) {
      carma = carma_critical_words(shape, levels);
    }
    table.add_row(
        {Table::fmt_sci(static_cast<double>(P), 1),
         Table::fmt_sci(bound.words, 3), Table::fmt_sci(alg1, 3),
         Table::fmt(alg1 / bound.words, 3),
         carma < 0 ? "-" : Table::fmt_sci(carma, 3),
         carma < 0 ? "-" : Table::fmt(carma / bound.words, 3)});
  }
  table.print(std::cout);
  std::cout
      << "\nThe Alg.1/bound ratio stays ~1 wherever an integral near-optimal "
         "grid exists;\nCARMA tracks the same P^{-2/3} scaling with a "
         "constant-factor gap — the paper's\nTable 1 story, extended to a "
         "million ranks.\n\n";

  // Rectangular problem: regime transitions at enormous P.
  const core::Shape rect{1 << 16, 1 << 12, 1 << 8};  // aspect 256 : 16 : 1
  std::cout << "rectangular problem " << rect.n1 << " x " << rect.n2 << " x "
            << rect.n3 << " (m/n = " << (1 << 4)
            << ", mn/k^2 = " << ((i64{1} << 28) / (1 << 16)) << ")\n\n";
  Table rtable({"P", "regime", "bound words", "Alg.1 eq.3", "ratio"});
  for (int levels = 0; levels <= 20; levels += 2) {
    const i64 P = i64{1} << levels;
    const auto bound =
        core::memory_independent_bound(rect, static_cast<double>(P));
    const core::Grid3 grid = core::best_integer_grid(rect, P);
    const double alg1 = core::alg1_cost_words(rect, grid);
    rtable.add_row({Table::fmt_sci(static_cast<double>(P), 1),
                    std::to_string(static_cast<int>(bound.regime)) + "D",
                    Table::fmt_sci(bound.words, 3), Table::fmt_sci(alg1, 3),
                    bound.words > 0 ? Table::fmt(alg1 / bound.words, 4)
                                    : "-"});
  }
  rtable.print(std::cout);
  return 0;
}
