// bench_topology — what §3.1's contention-free assumption hides.
//
// The lower bounds count words per processor on a fully connected network.
// This bench maps executed traces onto physical topologies (ring, 2D torus,
// hypercube) and reports mean hops and the hottest link — showing (1) that
// collective variant choice interacts with topology even at equal word
// counts, and (2) that Algorithm 1's fiber-aligned traffic maps gracefully
// onto a torus whose dimensions match the processor grid.
#include <iostream>
#include <numeric>

#include "collectives/allgather.hpp"
#include "machine/hierarchy.hpp"
#include "machine/topology.hpp"
#include "core/bounds.hpp"
#include "matmul/grid3d.hpp"
#include "util/table.hpp"

using namespace camb;

namespace {

void allgather_variants_on_topologies() {
  const int p = 16;
  const i64 block = 256;
  std::cout << "--- All-Gather variants mapped onto topologies (p = " << p
            << ", block = " << block << " words) ---\n";
  Table table({"variant", "topology", "mean hops", "hottest link words",
               "vs fully connected"});
  for (auto algo : {coll::AllgatherAlgo::kRing,
                    coll::AllgatherAlgo::kRecursiveDoubling}) {
    const char* algo_name =
        algo == coll::AllgatherAlgo::kRing ? "ring" : "recursive_doubling";
    Machine machine(p);
    Trace& trace = machine.enable_trace();
    machine.run([&](RankCtx& ctx) {
      (void)coll::allgather_equal(
          coll::Comm::world(ctx),
          std::vector<double>(static_cast<std::size_t>(block)), algo);
    });
    const auto flat = analyze_contention(trace, FullyConnected(p));
    for (const Topology* topo :
         std::initializer_list<const Topology*>{
             new FullyConnected(p), new Ring(p), new Torus2D(4, 4),
             new Hypercube(p)}) {
      const auto report = analyze_contention(trace, *topo);
      table.add_row({algo_name, topo->name(), Table::fmt(report.mean_hops, 2),
                     Table::fmt_int(report.max_link_words),
                     Table::fmt(static_cast<double>(report.max_link_words) /
                                    static_cast<double>(flat.max_link_words),
                                2) +
                         "x"});
      delete topo;
    }
  }
  table.print(std::cout);
  std::cout << "\nEqual word counts, very different physical footprints: each "
               "variant is one-hop\non its natural topology and congests the "
               "other's.\n\n";
}

void alg1_on_matched_torus() {
  std::cout << "--- Algorithm 1's traffic on matched vs mismatched tori ---\n";
  const core::Shape shape{64, 32, 16};
  const core::Grid3 grid{4, 4, 1};  // 16 ranks in a 4x4 logical grid
  const mm::Grid3dConfig cfg{shape, grid};
  Machine machine(16);
  Trace& trace = machine.enable_trace();
  machine.run([&](RankCtx& ctx) { (void)mm::grid3d_rank(ctx, cfg); });
  Table table({"topology", "mean hops", "hottest link words"});
  for (const Topology* topo : std::initializer_list<const Topology*>{
           new FullyConnected(16), new Torus2D(4, 4), new Torus2D(2, 8),
           new Ring(16), new Hypercube(16)}) {
    const auto report = analyze_contention(trace, *topo);
    table.add_row({topo->name(), Table::fmt(report.mean_hops, 2),
                   Table::fmt_int(report.max_link_words)});
    delete topo;
  }
  table.print(std::cout);
  std::cout << "\nThe 4x4 logical grid's fibers align with the 4x4 torus "
               "(fiber collectives stay\nwithin torus rows/columns); "
               "mismatched shapes stretch the same words over more\nlinks.  "
               "The bounds are topology-independent; attaining them on real "
               "networks\nadds this mapping problem on top.\n";
}

void node_mapping_ablation() {
  std::cout << "\n--- rank-to-node mapping: inter-node words of Algorithm 1 "
               "---\n"
            << "(16 ranks on 4 nodes; shape 64x32x16, grid 4x2x2 — the "
               "node-level bound\n with P' = 4 nodes applies to the max "
               "ingress)\n";
  const core::Shape shape{64, 32, 16};
  const core::Grid3 grid{4, 2, 2};
  Machine machine(16);
  Trace& trace = machine.enable_trace();
  const mm::Grid3dConfig cfg{shape, grid};
  machine.run([&](RankCtx& ctx) { (void)mm::grid3d_rank(ctx, cfg); });
  const auto bound = core::memory_independent_bound(shape, 4.0);
  Table table({"mapping", "inter-node words", "intra-node words",
               "max node ingress", "node-level bound"});
  struct Named {
    const char* name;
    NodeMapping mapping;
  };
  const Named mappings[] = {
      {"blocked (q1-slabs per node)", NodeMapping::blocked(16, 4)},
      {"round-robin", NodeMapping::round_robin(16, 4)},
  };
  for (const auto& m : mappings) {
    const auto report = analyze_hierarchy(trace, m.mapping);
    table.add_row({m.name, Table::fmt_int(report.inter_node_words),
                   Table::fmt_int(report.intra_node_words),
                   Table::fmt_int(report.max_node_ingress_words),
                   Table::fmt(bound.words, 1)});
  }
  table.print(std::cout);
  std::cout << "\nSame execution, same total words: placement alone decides "
               "how much crosses\nthe node boundary.  The fiber-aligned "
               "(blocked) mapping keeps the A and C\ncollectives on-node; "
               "its ingress approaches the node-level Theorem 3 bound.\n";
}

}  // namespace

int main() {
  std::cout << "=== Topology / contention analysis (beyond the section-3.1 "
               "model) ===\n\n";
  allgather_variants_on_topologies();
  alg1_on_matched_torus();
  node_mapping_ablation();
  return 0;
}
