// cambounds_cli — the library behind one command-line tool.
//
//   cambounds bound    --n1 .. --n2 .. --n3 .. --p ..  [--mem ..]
//   cambounds grid     --n1 .. --n2 .. --n3 .. --p ..  [--top ..]
//   cambounds plan     --n1 .. --n2 .. --n3 .. --p ..  [--batch-file ..]
//                      [--serve] [--sweep-pmax ..] [--threads ..] [--stats]
//   cambounds run      --algorithm .. --n1 .. --n2 .. --n3 .. --p ..
//   cambounds sweep    --n1 .. --n2 .. --n3 .. --pmax .. [--csv path]
//   cambounds audit    --n1 .. --n2 .. --n3 .. --p ..
//   cambounds topology --algorithm .. --n1 .. --n2 .. --n3 .. --p .. --topo ..
//   cambounds list     (available algorithms)
//
// Every subcommand is a thin veneer over the public API; this file is also a
// worked example of composing it.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>

#include "core/bounds.hpp"
#include "core/cost_eq3.hpp"
#include "core/grid.hpp"
#include "core/partition_audit.hpp"
#include "machine/faults.hpp"
#include "machine/topology.hpp"
#include "matmul/algorithm_registry.hpp"
#include "planner/planner.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace camb;

namespace {

void add_shape_flags(Cli& cli) {
  cli.add_flag("n1", "rows of A and C", "384");
  cli.add_flag("n2", "cols of A / rows of B", "96");
  cli.add_flag("n3", "cols of B and C", "24");
}

core::Shape shape_from(const Cli& cli) {
  return core::Shape{cli.get_int("n1"), cli.get_int("n2"), cli.get_int("n3")};
}

/// Parse "--crash-ranks 3,7" into a validated rank list.  Anything that is
/// not a comma-separated list of ranks in [0, nprocs) is a camb::Error, which
/// main() turns into a one-line `error: ...` and a nonzero exit.
std::vector<int> parse_crash_ranks(const std::string& spec, i64 nprocs) {
  std::vector<int> ranks;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string item = spec.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    pos = comma == std::string::npos ? spec.size() : comma + 1;
    if (item.empty()) throw Error("--crash-ranks: empty entry in '" + spec + "'");
    std::size_t used = 0;
    long value = 0;
    try {
      value = std::stol(item, &used);
    } catch (const std::exception&) {
      throw Error("--crash-ranks: '" + item + "' is not an integer");
    }
    if (used != item.size())
      throw Error("--crash-ranks: '" + item + "' is not an integer");
    if (value < 0)
      throw Error("--crash-ranks: rank " + item + " is negative");
    if (value >= nprocs)
      throw Error("--crash-ranks: rank " + item + " is out of range for p = " +
                  std::to_string(nprocs));
    if (std::find(ranks.begin(), ranks.end(), static_cast<int>(value)) !=
        ranks.end())
      throw Error("--crash-ranks: rank " + item + " listed twice in '" + spec +
                  "'");
    ranks.push_back(static_cast<int>(value));
  }
  return ranks;
}

/// Map an algorithm name to its checksum-augmented variant for --abft.
std::string abft_variant(const std::string& name) {
  if (name == "summa" || name == "summa_abft") return "summa_abft";
  if (name == "grid3d_optimal" || name == "grid3d_abft") return "grid3d_abft";
  throw Error("--abft: no checksum-augmented variant of algorithm '" + name +
              "' (use summa or grid3d_optimal)");
}

std::string elastic_variant(const std::string& name) {
  if (name == "summa" || name == "summa_elastic") return "summa_elastic";
  if (name == "grid3d_optimal" || name == "grid3d_elastic")
    return "grid3d_elastic";
  if (name == "alg25d" || name == "alg25d_elastic") return "alg25d_elastic";
  throw Error("--elastic: no shrink-and-regrid variant of algorithm '" + name +
              "' (use summa, grid3d_optimal, or alg25d)");
}

int cmd_bound(int argc, char** argv) {
  Cli cli;
  add_shape_flags(cli);
  cli.add_flag("p", "number of processors", "16");
  cli.add_flag("mem", "local memory in words (0 = unlimited)", "0");
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::cout << cli.usage("cambounds bound");
    return 0;
  }
  const core::Shape shape = shape_from(cli);
  const auto P = static_cast<double>(cli.get_int("p"));
  const auto bound = core::memory_independent_bound(shape, P);
  const char* regimes[] = {"", "1D (P <= m/n)", "2D (m/n <= P <= mn/k^2)",
                           "3D (mn/k^2 <= P)"};
  std::cout << "memory-independent lower bound (Theorem 3):\n"
            << "  regime:       " << regimes[static_cast<int>(bound.regime)]
            << "\n  leading term: " << bound.constant << " * "
            << bound.leading_term << "\n  accessed (D): " << bound.D
            << " words\n  owned:        " << bound.owned
            << " words\n  bound:        " << bound.words
            << " words must be communicated per processor\n";
  const double mem = cli.get_double("mem");
  if (mem > 0) {
    const core::SortedDims d = core::sort_dims(shape);
    const auto combined = core::tightest_bound(
        static_cast<double>(d.m), static_cast<double>(d.n),
        static_cast<double>(d.k), P, mem);
    std::cout << "with M = " << mem << " words/processor:\n"
              << "  memory-dependent bound: " << combined.mem_dependent
              << " words\n  binding bound:          " << combined.words << " ("
              << (combined.mem_dependent_dominates ? "memory-dependent"
                                                   : "memory-independent")
              << ")\n";
  }
  return 0;
}

int cmd_grid(int argc, char** argv) {
  Cli cli;
  add_shape_flags(cli);
  cli.add_flag("p", "number of processors", "16");
  cli.add_flag("top", "grids to print (0 = all)", "8");
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::cout << cli.usage("cambounds grid");
    return 0;
  }
  const core::Shape shape = shape_from(cli);
  const i64 P = cli.get_int("p");
  const auto bound =
      core::memory_independent_bound(shape, static_cast<double>(P));
  struct Entry {
    core::Grid3 grid;
    double cost;
  };
  std::vector<Entry> entries;
  for (const core::Grid3& g : core::all_grids(P)) {
    entries.push_back({g, core::alg1_cost_words(shape, g)});
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.cost < b.cost; });
  i64 top = cli.get_int("top");
  if (top <= 0) top = static_cast<i64>(entries.size());
  Table table({"grid", "eq.3 words", "vs bound", "divides"});
  for (i64 e = 0; e < std::min<i64>(top, static_cast<i64>(entries.size()));
       ++e) {
    const auto& entry = entries[static_cast<std::size_t>(e)];
    table.add_row({std::to_string(entry.grid.p1) + "x" +
                       std::to_string(entry.grid.p2) + "x" +
                       std::to_string(entry.grid.p3),
                   Table::fmt(entry.cost, 1),
                   Table::fmt(bound.words > 0 ? entry.cost / bound.words : 1, 4),
                   core::grid_divides(shape, entry.grid) ? "yes" : "no"});
  }
  table.print(std::cout);
  return 0;
}

int cmd_run(int argc, char** argv) {
  Cli cli;
  add_shape_flags(cli);
  cli.add_flag("p", "number of processors", "16");
  cli.add_flag("algorithm", "algorithm name (see `cambounds list`)",
               "grid3d_optimal");
  cli.add_flag("verify", "check the result", "true");
  cli.add_flag("master-seed",
               "master seed; rank RNG and fault seeds derive from it", "42");
  cli.add_flag("fault-profile",
               "fault injection profile: none | delays | drops | stragglers "
               "| light | heavy, or a key=value spec like "
               "'fail_prob=0.2,delay_prob=0.1,max_delay=4'",
               "none");
  cli.add_flag("fault-seed",
               "override the derived fault seed (0 = derive from master-seed)",
               "0");
  cli.add_flag("crash-ranks",
               "comma-separated ranks to crash mid-run (empty = none)", "");
  cli.add_flag("crash-max-send",
               "crash positions are drawn from [0, this] counted sends", "64");
  cli.add_flag("crash-seed",
               "override the derived crash seed (0 = derive from master-seed)",
               "0");
  cli.add_flag("abft",
               "run the checksum-augmented variant of the algorithm, which "
               "survives crashed ranks",
               "false");
  cli.add_flag("elastic",
               "run the elastic shrink-and-regrid variant: on crashes the "
               "survivors re-plan the optimal grid for P', migrate the live "
               "panels, and finish there",
               "false");
  cli.add_flag("elastic-max-failures",
               "crash budget the elastic shrink agreement is provisioned for",
               "1");
  cli.add_flag("checkpoint-interval",
               "commit a buddy checkpoint every this many algorithm steps "
               "(0 = checkpointing off)",
               "0");
  cli.add_flag("buddy-stride",
               "checkpoint buddy offset on the logical ring (rank i's "
               "snapshot is replicated to rank i+stride mod p)",
               "1");
  cli.add_flag("spares",
               "idle spare ranks provisioned for crash substitution", "0");
  cli.add_flag("sdc-rate",
               "per-copy probability of message drop, payload bit-flip, and "
               "duplication alike (0 = off); requires --reliable",
               "0");
  cli.add_flag("sdc-mem-rate",
               "per-rank probability of one output-tile bit-flip injected "
               "after the run (0 = off); requires --abft",
               "0");
  cli.add_flag("sdc-seed",
               "override the derived SDC seed (0 = derive from master-seed)",
               "0");
  cli.add_flag("reliable",
               "attach the reliable transport: checksummed envelopes, "
               "ack/nack, deterministic retransmit",
               "false");
  cli.add_flag("scheduler",
               "rank execution substrate: threads (one OS thread per rank) "
               "| fibers (cooperative, reaches P in the tens of thousands); "
               "default honors $CAMB_SCHEDULER",
               "default");
  cli.add_flag("dtype",
               "element scalar carried end-to-end: f64 | f32 | i64 | kahan; "
               "word accounting scales by sizeof(elem)/8",
               "f64");
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::cout << cli.usage("cambounds run");
    return 0;
  }
  const core::Shape shape = shape_from(cli);
  const i64 P = cli.get_int("p");
  std::string algorithm_name = cli.get("algorithm");
  if (cli.get_bool("abft")) algorithm_name = abft_variant(algorithm_name);
  if (cli.get_bool("elastic")) {
    if (cli.get_bool("abft"))
      throw Error("--elastic and --abft are rival recovery disciplines; "
                  "pick one");
    algorithm_name = elastic_variant(algorithm_name);
  }
  const auto& algorithm = mm::algorithm_by_name(algorithm_name);
  if (!algorithm.supports(shape, P)) {
    std::cerr << "algorithm '" << algorithm.name
              << "' does not support this (shape, P)\n";
    return 1;
  }
  mm::RunOptions opts;
  opts.verify = cli.get_bool("verify") ? mm::VerifyMode::kReference
                                       : mm::VerifyMode::kNone;
  opts.perturb.profile = cli.get("fault-profile");
  opts.perturb.master_seed =
      static_cast<std::uint64_t>(cli.get_int("master-seed"));
  opts.perturb.fault_seed_override =
      static_cast<std::uint64_t>(cli.get_int("fault-seed"));
  (void)fault_profile_from_spec(opts.perturb.profile);  // validate early
  opts.crash.ranks = parse_crash_ranks(cli.get("crash-ranks"), P);
  opts.crash.max_send_position = cli.get_int("crash-max-send");
  if (opts.crash.max_send_position < 0)
    throw Error("--crash-max-send must be non-negative");
  opts.crash.crash_seed_override =
      static_cast<std::uint64_t>(cli.get_int("crash-seed"));
  opts.checkpoint.interval = cli.get_int("checkpoint-interval");
  if (opts.checkpoint.interval < 0)
    throw Error("--checkpoint-interval must be non-negative");
  opts.checkpoint.buddy_stride = static_cast<int>(cli.get_int("buddy-stride"));
  opts.checkpoint.spares = static_cast<int>(cli.get_int("spares"));
  if (opts.checkpoint.spares < 0) throw Error("--spares must be non-negative");
  if (opts.checkpoint.spares > 0 && !opts.checkpoint.enabled())
    throw Error("--spares requires --checkpoint-interval > 0");
  opts.sdc.message_rate = cli.get_double("sdc-rate");
  if (opts.sdc.message_rate < 0 || opts.sdc.message_rate > 1)
    throw Error("--sdc-rate must be a probability in [0, 1]");
  opts.sdc.mem_rate = cli.get_double("sdc-mem-rate");
  if (opts.sdc.mem_rate < 0 || opts.sdc.mem_rate > 1)
    throw Error("--sdc-mem-rate must be a probability in [0, 1]");
  opts.sdc.sdc_seed_override =
      static_cast<std::uint64_t>(cli.get_int("sdc-seed"));
  opts.sdc.reliable = cli.get_bool("reliable");
  if (opts.sdc.message_rate > 0 && !opts.sdc.reliable)
    throw Error("--sdc-rate injects message drops, which hang their receiver "
                "without retransmission; add --reliable true");
  if (opts.sdc.mem_rate > 0 && !cli.get_bool("abft"))
    throw Error("--sdc-mem-rate corrupts output tiles, which only the "
                "checksum-augmented algorithms can repair; add --abft true");
  opts.elastic.enabled = cli.get_bool("elastic");
  opts.elastic.max_failures =
      static_cast<int>(cli.get_int("elastic-max-failures"));
  if (opts.elastic.max_failures < 0 || opts.elastic.max_failures > 30)
    throw Error("--elastic-max-failures must be in [0, 30]");
  opts.scheduler.kind = scheduler_kind_from_name(cli.get("scheduler"));
  opts.dtype = parse_dtype(cli.get("dtype"));  // unknown names fail fast here
  const mm::RunReport report = algorithm.run_opts(shape, P, opts);
  std::cout << "algorithm: " << algorithm.name << "\n"
            << "dtype:                  " << dtype_name(report.dtype) << " ("
            << report.element_bytes << " bytes/element, width "
            << dtype_width_words(report.dtype) << " words)\n"
            << "measured communication: " << report.measured_critical_recv
            << " words/processor (critical path)\n"
            << "analytic prediction:    " << report.predicted_words()
            << " words (" << report.predicted_critical_recv << " elements)\n"
            << "messages:               " << report.measured_critical_messages
            << "\nTheorem 3 bound:        " << report.lower_bound_words
            << " words (ratio "
            << Table::fmt(report.measured_critical_recv /
                              std::max(1.0, report.lower_bound_words),
                          4)
            << ")\n";
  if (report.verified) {
    std::cout << "max residual:           " << report.max_abs_error << "\n";
  }
  std::cout << "master seed:            " << report.faults.master_seed << "\n";
  if (report.faults.enabled) {
    std::cout << "simulated time:         " << report.simulated_time << "\n"
              << "faults:                 " << report.faults.summary() << "\n";
  }
  if (report.recovery.enabled || report.recovery.abft) {
    std::cout << "recovery:               " << report.recovery.summary()
              << "\n";
  }
  if (report.resilience.enabled) {
    std::cout << "resilience:             " << report.resilience.summary()
              << "\n";
  }
  if (report.corruption.enabled) {
    std::cout << "corruption:             " << report.corruption.summary()
              << "\n";
  }
  if (report.elastic.enabled) {
    std::cout << "elastic:                " << report.elastic.summary()
              << "\n";
  }
  return 0;
}

int cmd_sweep(int argc, char** argv) {
  Cli cli;
  add_shape_flags(cli);
  cli.add_flag("pmax", "largest processor count", "4096");
  cli.add_flag("csv", "optional CSV output path", "");
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::cout << cli.usage("cambounds sweep");
    return 0;
  }
  const core::Shape shape = shape_from(cli);
  Table table({"P", "regime", "bound words", "best grid", "eq.3 words",
               "ratio"});
  for (i64 P = 1; P <= cli.get_int("pmax"); P *= 2) {
    const auto bound =
        core::memory_independent_bound(shape, static_cast<double>(P));
    const core::Grid3 grid = core::best_integer_grid(shape, P);
    const double cost = core::alg1_cost_words(shape, grid);
    table.add_row({Table::fmt_int(P),
                   std::to_string(static_cast<int>(bound.regime)) + "D",
                   Table::fmt(bound.words, 1),
                   std::to_string(grid.p1) + "x" + std::to_string(grid.p2) +
                       "x" + std::to_string(grid.p3),
                   Table::fmt(cost, 1),
                   Table::fmt(bound.words > 0 ? cost / bound.words : 1, 4)});
  }
  table.print(std::cout);
  const std::string csv = cli.get("csv");
  if (!csv.empty()) {
    table.write_csv(csv);
    std::cout << "wrote " << csv << "\n";
  }
  return 0;
}

/// One line of the plan protocol: `n1 n2 n3 P` (whitespace-separated).
/// Blank lines and `#` comments are skipped (returns false).  Malformed
/// lines throw camb::Error naming the offending text.
bool parse_plan_line(const std::string& line, planner::PlanRequest* req) {
  std::istringstream in(line);
  i64 n1 = 0, n2 = 0, n3 = 0, p = 0;
  std::string first;
  if (!(in >> first)) return false;  // blank
  if (first[0] == '#') return false;
  std::istringstream head(first);
  if (!(head >> n1) || !head.eof() || !(in >> n2 >> n3 >> p)) {
    throw Error("plan: expected 'n1 n2 n3 P', got '" + line + "'");
  }
  std::string extra;
  if (in >> extra) {
    throw Error("plan: trailing junk '" + extra + "' in '" + line + "'");
  }
  *req = planner::PlanRequest{core::Shape{n1, n2, n3}, p};
  return true;
}

/// One response line of the plan protocol (machine-parseable key=value).
std::string format_plan(const planner::PlanRequest& req,
                        const planner::PlanResult& result) {
  std::ostringstream out;
  out << req.shape.n1 << " " << req.shape.n2 << " " << req.shape.n3 << " "
      << req.P << " grid=" << result.grid.p1 << "x" << result.grid.p2 << "x"
      << result.grid.p3 << " cost=" << result.cost_words
      << " regime=" << static_cast<int>(result.regime)
      << "D bound=" << result.bound_words << " ratio=" << result.ratio
      << " exact=" << (result.exact_grid ? 1 : 0);
  return out.str();
}

void print_planner_stats(std::ostream& out) {
  const planner::PlannerStats stats =
      planner::GridPlanner::instance().stats();
  out << "planner stats: point " << stats.point.hits << "/"
      << stats.point.hits + stats.point.misses << " hits, atmost "
      << stats.atmost.hits << "/" << stats.atmost.hits + stats.atmost.misses
      << ", shape " << stats.shape.hits << "/"
      << stats.shape.hits + stats.shape.misses << ", factor "
      << stats.factor.hits << "/" << stats.factor.hits + stats.factor.misses
      << ", batch " << stats.batch_queries << " queries ("
      << stats.batch_deduped << " deduped), sweep " << stats.sweep_points
      << " points\n";
}

int cmd_plan(int argc, char** argv) {
  Cli cli;
  add_shape_flags(cli);
  cli.add_flag("p", "number of processors", "16");
  cli.add_flag("batch-file", "file of 'n1 n2 n3 P' queries (- = stdin)", "");
  cli.add_flag("serve", "line-protocol service on stdin/stdout", "false");
  cli.add_flag("sweep-pmax", "strong-scaling sweep up to this P (0 = off)",
               "0");
  cli.add_flag("threads", "batch worker threads (0 = hardware)", "0");
  cli.add_flag("stats", "print planner cache statistics at exit", "false");
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::cout << cli.usage("cambounds plan");
    return 0;
  }
  planner::GridPlanner& service = planner::GridPlanner::instance();
  const int threads = static_cast<int>(cli.get_int("threads"));
  const std::string batch_file = cli.get("batch-file");
  const i64 sweep_pmax = cli.get_int("sweep-pmax");

  if (cli.get_bool("serve")) {
    // One query per line, one answer per line, flushed per query so a pipe
    // driver can interleave.  `stats` reports, `quit` (or EOF) exits.
    std::string line;
    while (std::getline(std::cin, line)) {
      if (line == "quit") break;
      if (line == "stats") {
        print_planner_stats(std::cout);
        std::cout.flush();
        continue;
      }
      try {
        planner::PlanRequest req;
        if (!parse_plan_line(line, &req)) continue;
        std::cout << format_plan(req, service.plan(req)) << "\n";
      } catch (const std::exception& err) {
        std::cout << "error: " << err.what() << "\n";
      }
      std::cout.flush();
    }
    if (cli.get_bool("stats")) print_planner_stats(std::cerr);
    return 0;
  }

  if (!batch_file.empty()) {
    std::ifstream file;
    const bool from_stdin = batch_file == "-";
    if (!from_stdin) {
      file.open(batch_file);
      if (!file) throw Error("plan: cannot open --batch-file " + batch_file);
    }
    std::istream& in = from_stdin ? std::cin : file;
    std::vector<planner::PlanRequest> reqs;
    std::string line;
    while (std::getline(in, line)) {
      planner::PlanRequest req;
      if (parse_plan_line(line, &req)) reqs.push_back(req);
    }
    const std::vector<planner::PlanResult> results =
        service.plan_batch(reqs, threads);
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      std::cout << format_plan(reqs[i], results[i]) << "\n";
    }
    if (cli.get_bool("stats")) print_planner_stats(std::cerr);
    return 0;
  }

  const core::Shape shape = shape_from(cli);
  if (sweep_pmax > 0) {
    std::vector<i64> counts;
    for (i64 P = 1; P <= sweep_pmax; P *= 2) counts.push_back(P);
    const planner::SweepResult sweep = service.plan_sweep(shape, counts);
    std::cout << "regime boundaries: P1 = " << sweep.boundary_1d
              << " (1D->2D), P2 = " << sweep.boundary_2d << " (2D->3D)\n";
    for (const planner::RegimeSegment& seg : sweep.segments) {
      std::cout << "  " << static_cast<int>(seg.regime) << "D for P in ["
                << seg.p_lo << ", " << seg.p_hi << "]\n";
    }
    Table table({"P", "regime", "bound words", "best grid", "eq.3 words",
                 "ratio"});
    for (const planner::SweepPoint& pt : sweep.points) {
      table.add_row({Table::fmt_int(pt.P),
                     std::to_string(static_cast<int>(pt.regime)) + "D",
                     Table::fmt(pt.bound_words, 1),
                     std::to_string(pt.grid.p1) + "x" +
                         std::to_string(pt.grid.p2) + "x" +
                         std::to_string(pt.grid.p3),
                     Table::fmt(pt.cost_words, 1), Table::fmt(pt.ratio, 4)});
    }
    table.print(std::cout);
    if (cli.get_bool("stats")) print_planner_stats(std::cerr);
    return 0;
  }

  const planner::PlanRequest req{shape, cli.get_int("p")};
  const planner::PlanResult result = service.plan(req);
  std::cout << "plan for " << shape.n1 << "x" << shape.n2 << "x" << shape.n3
            << " on P = " << req.P << ":\n"
            << "  best grid:  " << result.grid.p1 << "x" << result.grid.p2
            << "x" << result.grid.p3 << (result.exact_grid ? " (exact)" : "")
            << "\n  eq.3 words: " << result.cost_words << "\n  regime:     "
            << static_cast<int>(result.regime) << "D\n  bound:      "
            << result.bound_words << " words\n  ratio:      " << result.ratio
            << "\n  real grid:  " << result.real.p << " x " << result.real.q
            << " x " << result.real.r << " (sorted axes)\n";
  if (cli.get_bool("stats")) print_planner_stats(std::cerr);
  return 0;
}

int cmd_audit(int argc, char** argv) {
  Cli cli;
  cli.add_flag("n1", "rows of A and C", "2");
  cli.add_flag("n2", "cols of A / rows of B", "2");
  cli.add_flag("n3", "cols of B and C", "2");
  cli.add_flag("p", "number of processors", "2");
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::cout << cli.usage("cambounds audit");
    return 0;
  }
  const core::Shape shape = shape_from(cli);
  const int P = static_cast<int>(cli.get_int("p"));
  const auto audit = core::audit_balanced_partitions(shape, P);
  const core::SortedDims d = core::sort_dims(shape);
  const auto sol = core::solve_analytic({static_cast<double>(d.m),
                                         static_cast<double>(d.n),
                                         static_cast<double>(d.k),
                                         static_cast<double>(P)});
  std::cout << "examined " << audit.partitions_examined
            << " balanced partitions of the " << shape.n1 << "x" << shape.n2
            << "x" << shape.n3 << " iteration space among " << P
            << " processors\n"
            << "best max-projection-sum: " << audit.best_max_projection_sum
            << " (Lemma 2 optimum: " << sol.objective << ")\n"
            << (static_cast<double>(audit.best_max_projection_sum) + 1e-9 >=
                        sol.objective
                    ? "bound CONFIRMED: no execution beats it\n"
                    : "bound VIOLATED (bug!)\n");
  return 0;
}

int cmd_topology(int argc, char** argv) {
  Cli cli;
  add_shape_flags(cli);
  cli.add_flag("p", "number of processors", "16");
  cli.add_flag("algorithm", "algorithm name", "grid3d_optimal");
  cli.add_flag("topo", "ring | torus | hypercube | full", "ring");
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::cout << cli.usage("cambounds topology");
    return 0;
  }
  const core::Shape shape = shape_from(cli);
  const i64 P = cli.get_int("p");
  const auto& algorithm = mm::algorithm_by_name(cli.get("algorithm"));
  if (!algorithm.supports(shape, P)) {
    std::cerr << "algorithm does not support this (shape, P)\n";
    return 1;
  }
  // Re-run with tracing (the registry's run() owns its machine, so trace a
  // direct grid3d run when asked for the optimal algorithm; otherwise fall
  // back to registry semantics without a trace).
  Machine machine(static_cast<int>(P));
  Trace& trace = machine.enable_trace();
  const core::Grid3 grid = core::best_integer_grid(shape, P);
  mm::Grid3dConfig cfg{shape, grid};
  machine.run([&](RankCtx& ctx) { (void)mm::grid3d_rank(ctx, cfg); });

  std::unique_ptr<Topology> topo;
  const std::string kind = cli.get("topo");
  if (kind == "ring") topo = std::make_unique<Ring>(static_cast<int>(P));
  else if (kind == "hypercube") topo = std::make_unique<Hypercube>(static_cast<int>(P));
  else if (kind == "full") topo = std::make_unique<FullyConnected>(static_cast<int>(P));
  else if (kind == "torus") {
    i64 rows = isqrt(P);
    while (P % rows != 0) --rows;
    topo = std::make_unique<Torus2D>(static_cast<int>(rows),
                                     static_cast<int>(P / rows));
  } else {
    std::cerr << "unknown topology: " << kind << "\n";
    return 1;
  }
  const auto report = analyze_contention(trace, *topo);
  std::cout << "Algorithm 1 on grid " << grid.p1 << "x" << grid.p2 << "x"
            << grid.p3 << ", topology " << topo->name() << ":\n"
            << "  total words:   " << report.total_words << "\n"
            << "  mean hops:     " << Table::fmt(report.mean_hops, 3) << "\n"
            << "  hottest link:  " << report.max_link.first << " -> "
            << report.max_link.second << " (" << report.max_link_words
            << " words)\n";
  return 0;
}

int cmd_list() {
  Table table({"algorithm", "bandwidth-optimal"});
  for (const auto& algorithm : mm::algorithm_registry()) {
    table.add_row({algorithm.name, algorithm.bandwidth_optimal ? "yes" : "no"});
  }
  table.print(std::cout);
  return 0;
}

void usage() {
  std::cout << "usage: cambounds <bound|grid|plan|run|sweep|audit|topology|"
               "list> [flags]\n"
               "  (run `cambounds <subcommand> --help` for flags)\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 1;
  }
  const std::string sub = argv[1];
  // Shift argv so each subcommand sees its own flags at argv[1..].
  int sub_argc = argc - 1;
  char** sub_argv = argv + 1;
  try {
    if (sub == "bound") return cmd_bound(sub_argc, sub_argv);
    if (sub == "grid") return cmd_grid(sub_argc, sub_argv);
    if (sub == "plan") return cmd_plan(sub_argc, sub_argv);
    if (sub == "run") return cmd_run(sub_argc, sub_argv);
    if (sub == "sweep") return cmd_sweep(sub_argc, sub_argv);
    if (sub == "audit") return cmd_audit(sub_argc, sub_argv);
    if (sub == "topology") return cmd_topology(sub_argc, sub_argv);
    if (sub == "list") return cmd_list();
    if (sub == "--help" || sub == "-h") {
      usage();
      return 0;
    }
    std::cerr << "unknown subcommand: " << sub << "\n";
    usage();
    return 1;
  } catch (const std::exception& err) {
    std::cerr << "error: " << err.what() << "\n";
    return 1;
  }
}
