// bench_report — render a benchmark JSON report as a table.  Understands
// the BENCH_PR5.json hot-path report (bench_hotpath), the BENCH_PR7.json
// SDC retransmit-tax report (bench_sdc_overhead), the BENCH_PR8.json
// scalar-substrate report (bench_dtype), the BENCH_PR9.json elastic
// transition-bill report (bench_elastic_overhead), and the BENCH_PR10.json
// grid-planner query-engine report (bench_planner_qps), dispatching on the
// "bench" key.
//
// The repo carries no JSON library, and the report formats are fixed, so
// this uses a small key-scanning extractor rather than a general parser.
// Usage: bench_report [PATH]   (default: BENCH_PR5.json)
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

// Value of the first occurrence of `"key": <number>` at or after `from`.
// Returns false if the key is absent.
bool find_number(const std::string& text, const std::string& key, double* out,
                 std::size_t from = 0, std::size_t* pos_out = nullptr) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t pos = text.find(needle, from);
  if (pos == std::string::npos) return false;
  const char* start = text.c_str() + pos + needle.size();
  char* end = nullptr;
  const double value = std::strtod(start, &end);
  if (end == start) return false;
  *out = value;
  if (pos_out != nullptr) *pos_out = pos;
  return true;
}

bool find_string(const std::string& text, const std::string& key,
                 std::string* out) {
  const std::string needle = "\"" + key + "\": \"";
  const std::size_t pos = text.find(needle);
  if (pos == std::string::npos) return false;
  const std::size_t begin = pos + needle.size();
  const std::size_t close = text.find('"', begin);
  if (close == std::string::npos) return false;
  *out = text.substr(begin, close - begin);
  return true;
}

// Renders a bench_sdc_overhead report: one row per (algorithm, P, rate)
// case, with the retransmit tax and the exactness verdict.
int render_sdc_overhead(const std::string& text, const std::string& path,
                        const std::string& mode) {
  std::printf("SDC retransmit-tax report (%s)%s\n", path.c_str(),
              mode.empty() ? "" : ("  [" + mode + " mode]").c_str());
  std::printf("  %-16s %4s %6s %9s %12s %14s %14s %8s %8s  %s\n", "algorithm",
              "P", "rate", "injected", "clean recv", "faulted recv",
              "retransmit w", "tax", "vs Thm3", "exact");
  std::size_t cursor = text.find("\"cases\":");
  if (cursor == std::string::npos) {
    std::fprintf(stderr, "bench_report: no cases array in %s\n", path.c_str());
    return 1;
  }
  bool all_exact = true;
  for (;;) {
    const std::size_t entry = text.find("{\"algorithm\":", cursor);
    if (entry == std::string::npos) break;
    std::string algorithm;
    {
      const std::string needle = "\"algorithm\": \"";
      const std::size_t name_at = text.find(needle, entry);
      if (name_at == std::string::npos) break;
      const std::size_t begin = name_at + needle.size();
      const std::size_t close = text.find('"', begin);
      if (close == std::string::npos) break;
      algorithm = text.substr(begin, close - begin);
    }
    double procs = 0, rate = 0, injected = 0, clean = 0, faulted = 0,
           retrans = 0, tax = 0, bound = 0;
    if (!find_number(text, "procs", &procs, entry) ||
        !find_number(text, "rate", &rate, entry) ||
        !find_number(text, "injected", &injected, entry) ||
        !find_number(text, "clean_recv_words", &clean, entry) ||
        !find_number(text, "faulted_recv_words", &faulted, entry) ||
        !find_number(text, "retransmit_words", &retrans, entry) ||
        !find_number(text, "tax_ratio", &tax, entry) ||
        !find_number(text, "bound_ratio", &bound, entry)) {
      break;
    }
    const bool exact =
        text.compare(text.find("\"exact\":", entry) + 9, 4, "true") == 0;
    all_exact &= exact;
    std::printf(
        "  %-16s %4.0f %6.2f %9.0f %12.0f %14.0f %14.0f %7.4fx %7.4fx  %s\n",
        algorithm.c_str(), procs, rate, injected, clean, faulted, retrans, tax,
        bound, exact ? "bit-exact" : "NO");
    cursor = entry + 1;
  }
  std::printf("%s\n", all_exact
                          ? "every healed run matched the closed-form tax"
                          : "SOME RUN MISSED ITS PREDICTION — investigate!");
  return all_exact ? 0 : 1;
}

// Renders a bench_dtype report: the f32 vs f64 kernel table, then one row
// per (algorithm, dtype) sweep case with the word-exactness verdict.
int render_dtype(const std::string& text, const std::string& path,
                 const std::string& mode) {
  std::printf("scalar-substrate report (%s)%s\n", path.c_str(),
              mode.empty() ? "" : ("  [" + mode + " mode]").c_str());

  std::size_t cursor = text.find("\"gemm\":");
  if (cursor != std::string::npos) {
    std::printf("\nlocal GEMM kernel (GFLOP/s, square n)\n");
    std::printf("  %6s %8s %10s\n", "n", "dtype", "GFLOP/s");
    std::size_t at = 0;
    double n = 0.0;
    const std::size_t cases_at = text.find("\"cases\":");
    while (find_number(text, "n", &n, cursor, &at) && at < cases_at) {
      std::string dtype;
      {
        const std::string needle = "\"dtype\": \"";
        const std::size_t d = text.rfind(needle, at);
        const std::size_t begin = d + needle.size();
        dtype = text.substr(begin, text.find('"', begin) - begin);
      }
      double gflops = 0.0;
      if (!find_number(text, "gflops", &gflops, at)) break;
      std::printf("  %6.0f %8s %10.2f\n", n, dtype.c_str(), gflops);
      cursor = at + 1;
    }
  }

  std::printf("\nend-to-end dtype sweep\n");
  std::printf("  %-16s %6s %6s %4s %12s %13s %9s  %s\n", "algorithm", "dtype",
              "width", "P", "measured w", "predicted w", "vs Thm3", "exact");
  cursor = text.find("\"cases\":");
  if (cursor == std::string::npos) {
    std::fprintf(stderr, "bench_report: no cases array in %s\n", path.c_str());
    return 1;
  }
  bool all_exact = true;
  for (;;) {
    const std::size_t entry = text.find("{\"algorithm\":", cursor);
    if (entry == std::string::npos) break;
    std::string algorithm, dtype;
    {
      std::string needle = "\"algorithm\": \"";
      std::size_t at = text.find(needle, entry);
      if (at == std::string::npos) break;
      std::size_t begin = at + needle.size();
      algorithm = text.substr(begin, text.find('"', begin) - begin);
      needle = "\"dtype\": \"";
      at = text.find(needle, entry);
      if (at == std::string::npos) break;
      begin = at + needle.size();
      dtype = text.substr(begin, text.find('"', begin) - begin);
    }
    double procs = 0, measured = 0, predicted = 0, width = 0, bound = 0;
    if (!find_number(text, "procs", &procs, entry) ||
        !find_number(text, "measured_words", &measured, entry) ||
        !find_number(text, "predicted_words", &predicted, entry) ||
        !find_number(text, "width", &width, entry) ||
        !find_number(text, "vs_bound", &bound, entry)) {
      break;
    }
    const bool exact =
        text.compare(text.find("\"exact\":", entry) + 9, 4, "true") == 0;
    all_exact &= exact;
    std::printf("  %-16s %6s %6.2f %4.0f %12.1f %13.1f %8.4fx  %s\n",
                algorithm.c_str(), dtype.c_str(), width, procs, measured,
                predicted, bound, exact ? "word-exact" : "NO");
    cursor = entry + 1;
  }
  std::printf("%s\n",
              all_exact ? "every case matched predicted elements x width"
                        : "SOME CASE MISSED ITS PREDICTION — investigate!");
  return all_exact ? 0 : 1;
}

// Renders a bench_elastic_overhead report: one row per (algorithm, f)
// case, with the shrink / migration / exec transition bill and the
// exactness verdict against the closed-form predictor.
int render_elastic_overhead(const std::string& text, const std::string& path,
                            const std::string& mode) {
  std::printf("elastic transition-bill report (%s)%s\n", path.c_str(),
              mode.empty() ? "" : ("  [" + mode + " mode]").c_str());
  std::printf("  %-16s %4s %3s %4s %8s %9s %8s %8s %10s  %s\n", "algorithm",
              "P", "f", "P'", "grid", "shrink w", "migr w", "exec w",
              "vs Thm3@P'", "exact");
  std::size_t cursor = text.find("\"cases\":");
  if (cursor == std::string::npos) {
    std::fprintf(stderr, "bench_report: no cases array in %s\n", path.c_str());
    return 1;
  }
  bool all_exact = true;
  for (;;) {
    const std::size_t entry = text.find("{\"algorithm\":", cursor);
    if (entry == std::string::npos) break;
    std::string algorithm, grid;
    {
      std::string needle = "\"algorithm\": \"";
      std::size_t at = text.find(needle, entry);
      if (at == std::string::npos) break;
      std::size_t begin = at + needle.size();
      algorithm = text.substr(begin, text.find('"', begin) - begin);
      needle = "\"grid\": \"";
      at = text.find(needle, entry);
      if (at == std::string::npos) break;
      begin = at + needle.size();
      grid = text.substr(begin, text.find('"', begin) - begin);
    }
    double procs = 0, failures = 0, survivors = 0, shrink = 0, migr = 0,
           exec = 0, bound = 0;
    if (!find_number(text, "procs", &procs, entry) ||
        !find_number(text, "failures", &failures, entry) ||
        !find_number(text, "survivors", &survivors, entry) ||
        !find_number(text, "shrink_words", &shrink, entry) ||
        !find_number(text, "migration_words", &migr, entry) ||
        !find_number(text, "exec_words", &exec, entry) ||
        !find_number(text, "overhead_vs_bound", &bound, entry)) {
      break;
    }
    const bool exact =
        text.compare(text.find("\"exact\":", entry) + 9, 4, "true") == 0;
    all_exact &= exact;
    std::printf("  %-16s %4.0f %3.0f %4.0f %8s %9.0f %8.1f %8.1f %9.4fx  %s\n",
                algorithm.c_str(), procs, failures, survivors, grid.c_str(),
                shrink, migr, exec, bound, exact ? "bit-exact" : "NO");
    cursor = entry + 1;
  }
  std::printf("%s\n",
              all_exact
                  ? "every shrunken run matched the closed-form transition bill"
                  : "SOME RUN MISSED ITS PREDICTION — investigate!");
  return all_exact ? 0 : 1;
}

// Renders a bench_planner_qps report: throughput + tail latency per query
// mix, the batch/scaling figures, and the bitwise-exactness verdict (the
// render exits nonzero when any cached answer diverged).
int render_planner_qps(const std::string& text, const std::string& path,
                       const std::string& mode) {
  std::printf("grid-planner query-engine report (%s)%s\n", path.c_str(),
              mode.empty() ? "" : ("  [" + mode + " mode]").c_str());
  double pool = 0;
  if (find_number(text, "pool", &pool)) {
    std::printf("  pool of %.0f (shape, P) combinations\n", pool);
  }
  std::printf("\n  %-9s %12s %9s %9s %10s %13s %9s\n", "mix", "qps",
              "p50 ns", "p99 ns", "p999 ns", "uncached ns", "speedup");
  std::size_t cursor = text.find("\"mixes\":");
  while (cursor != std::string::npos) {
    const std::size_t entry = text.find("{\"mix\":", cursor);
    if (entry == std::string::npos) break;
    std::string mix;
    {
      const std::string needle = "\"mix\": \"";
      const std::size_t at = text.find(needle, entry);
      if (at == std::string::npos) break;
      const std::size_t begin = at + needle.size();
      mix = text.substr(begin, text.find('"', begin) - begin);
    }
    double qps = 0, p50 = 0, p99 = 0, p999 = 0, uncached = 0, speedup = 0;
    if (!find_number(text, "qps", &qps, entry) ||
        !find_number(text, "ns_p50", &p50, entry) ||
        !find_number(text, "ns_p99", &p99, entry) ||
        !find_number(text, "ns_p999", &p999, entry) ||
        !find_number(text, "uncached_ns", &uncached, entry) ||
        !find_number(text, "speedup", &speedup, entry)) {
      break;
    }
    std::printf("  %-9s %12.0f %9.0f %9.0f %10.0f %13.0f %8.1fx\n",
                mix.c_str(), qps, p50, p99, p999, uncached, speedup);
    cursor = entry + 1;
    if (text.find("{\"mix\":", cursor) > text.find("\"batch\"", cursor)) break;
  }
  double batch_qps = 0, dedup = 0;
  const std::size_t batch_at = text.find("\"batch\":");
  if (batch_at != std::string::npos &&
      find_number(text, "qps", &batch_qps, batch_at) &&
      find_number(text, "dedup_fraction", &dedup, batch_at)) {
    std::printf("\n  plan_batch %12.0f qps  (%.1f%% answered by dedup)\n",
                batch_qps, 100.0 * dedup);
  }
  std::size_t scale_at = text.find("\"scaling\":");
  const std::size_t cache_at = text.find("\"cache\":");
  while (scale_at != std::string::npos) {
    const std::size_t entry = text.find("{\"threads\":", scale_at);
    if (entry == std::string::npos || entry > cache_at) break;
    double threads = 0, qps = 0;
    if (!find_number(text, "threads", &threads, entry) ||
        !find_number(text, "qps", &qps, entry)) {
      break;
    }
    std::printf("  threads %.0f %12.0f qps\n", threads, qps);
    scale_at = entry + 1;
  }
  double checked = 0, mismatches = -1;
  const std::size_t exact_at = text.find("\"exactness\":");
  if (exact_at == std::string::npos ||
      !find_number(text, "checked", &checked, exact_at) ||
      !find_number(text, "mismatches", &mismatches, exact_at)) {
    std::fprintf(stderr, "bench_report: no exactness record in %s\n",
                 path.c_str());
    return 1;
  }
  const bool exact = mismatches == 0;
  std::printf("\n  exactness: %.0f checks, %.0f mismatches — %s\n", checked,
              mismatches,
              exact ? "every cached answer bit-identical to the uncached path"
                    : "CACHE DIVERGED FROM THE ANALYTIC PATH — investigate!");
  return exact ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "BENCH_PR5.json";
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_report: cannot read %s\n", path.c_str());
    return 1;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();

  std::string mode;
  find_string(text, "mode", &mode);

  std::string bench;
  if (find_string(text, "bench", &bench) && bench == "sdc_overhead") {
    return render_sdc_overhead(text, path, mode);
  }
  if (bench == "dtype") {
    return render_dtype(text, path, mode);
  }
  if (bench == "elastic_overhead") {
    return render_elastic_overhead(text, path, mode);
  }
  if (bench == "planner_qps") {
    return render_planner_qps(text, path, mode);
  }
  std::printf("hot-path benchmark report (%s)%s\n", path.c_str(),
              mode.empty() ? "" : ("  [" + mode + " mode]").c_str());

  double before = 0.0, after = 0.0, speedup = 0.0, ring = 0.0;
  if (find_number(text, "before_msgs_per_sec", &before) &&
      find_number(text, "after_msgs_per_sec", &after) &&
      find_number(text, "speedup", &speedup)) {
    std::printf("\nmailbox (matched pop, 63-source backlog)\n");
    std::printf("  %-12s %14.0f msgs/s\n", "before", before);
    std::printf("  %-12s %14.0f msgs/s\n", "after", after);
    std::printf("  %-12s %13.2fx\n", "speedup", speedup);
  }
  if (find_number(text, "machine_ring_p8_msgs_per_sec", &ring)) {
    std::printf("  %-12s %14.0f msgs/s (end-to-end, P=8)\n", "ring", ring);
  }

  // The gemm array: walk successive "n" keys.
  std::size_t cursor = text.find("\"gemm\":");
  if (cursor != std::string::npos) {
    std::printf("\ngemm (GFLOP/s, square n)\n");
    std::printf("  %6s %10s %10s %9s\n", "n", "before", "after", "speedup");
    double n = 0.0;
    std::size_t at = 0;
    while (find_number(text, "n", &n, cursor, &at)) {
      double b = 0.0, a = 0.0, s = 0.0;
      if (!find_number(text, "before_gflops", &b, at) ||
          !find_number(text, "after_gflops", &a, at) ||
          !find_number(text, "speedup", &s, at)) {
        break;
      }
      std::printf("  %6.0f %10.2f %10.2f %8.2fx\n", n, b, a, s);
      cursor = at + 1;
      if (text.find("\"n\":", cursor) > text.find("\"stress_sweep\"", cursor)) {
        break;  // don't read past the gemm array
      }
    }
  }

  double seeds = 0.0, cur = 0.0, recorded = 0.0;
  if (find_number(text, "seeds", &seeds) &&
      find_number(text, "current_best_sec", &cur)) {
    std::printf("\nperturbed stress sweep (%d seeds)\n",
                static_cast<int>(seeds));
    std::printf("  %-22s %8.3f s\n", "current (best)", cur);
    if (find_number(text, "seed_build_interleaved_best_sec", &recorded)) {
      std::printf("  %-22s %8.3f s (interleaved seed-build runs, same host)\n",
                  "seed build (best)", recorded);
      if (recorded > 0.0) {
        std::printf("  %-22s %8.2fx faster\n", "wall-clock", recorded / cur);
      }
    }
  }
  return 0;
}
